//! Minimal command-line option handling shared by the experiment binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--full` — run the paper's full configuration (25 combinations,
//!   2/4/6/8/10 PTGs); without it a reduced "quick" configuration is used so
//!   that the binaries finish in seconds;
//! * `--combinations N` — override the number of random combinations;
//! * `--ptgs a,b,c` — override the list of concurrent-PTG counts;
//! * `--strategies a,b,c` — compare only the named constraint policies,
//!   resolved through the built-in [`PolicyRegistry`] (e.g.
//!   `--strategies es,wps-work@0.5`);
//! * `--allocation NAME` — override the allocation procedure by name (e.g.
//!   `--allocation scrap`);
//! * `--workload SPEC` — override the workload source with a spec resolved
//!   through the [`WorkloadCatalog`] (e.g. `daggen@n=50,width=0.5`,
//!   `random/poisson@lambda=0.1`);
//! * `--trace PATH` — replay the workloads recorded in a trace file instead
//!   of generating them (see `--export-trace`);
//! * `--export-trace PATH` — write every workload the run would consume as
//!   a replayable JSON trace to `PATH`;
//! * `--replications N` — number of paired replications: the whole grid is
//!   redrawn `N` times on deterministically derived seeds (common random
//!   numbers within each replication); with `N > 1` the binaries print
//!   `mean ±ci` cells instead of bare means. A replayed `--trace` holds one
//!   fixed workload per combination, so `--replications > 1` would only
//!   duplicate the same draws and fabricate precision — the combination is
//!   clamped to one replication with a warning;
//! * `--ci LEVEL` — confidence level of the bootstrap intervals (default
//!   0.95), e.g. `--ci 0.99`;
//! * `--threads N` — number of worker threads (0 = all cores);
//! * `--seed S` — base random seed;
//! * `--csv PATH` — also write the raw results as CSV to `PATH`;
//! * `--cache-dir PATH` — persist every evaluated (scenario, policy) cell
//!   in the content-addressed cell cache at `PATH` (see `mcsched-runtime`):
//!   re-runs with overlapping cells skip finished work byte-identically and
//!   interrupted runs resume from completed shards;
//! * `--no-resume` — clear the cache directory instead of serving from it
//!   (escape hatch for a cache suspected stale);
//! * `--shard i/N` — evaluate only partition `i` of a deterministic `N`-way
//!   split of the cell grid (digest modulo `N`, any `N`): the sharded-run
//!   half of a multi-process campaign. Each of the `N` processes points its
//!   own `--cache-dir` at a separate directory; afterwards `mcsched-merge`
//!   unions the directories and a final warm unsharded run renders tables
//!   byte-identical to a single-process run (a sharded run's own tables
//!   contain NaN placeholders for the cells it skipped);
//! * `--progress` — narrate one stderr line per completed data point;
//! * `--profile` — print per-phase wall-clock timings (workload generation,
//!   β + allocation, mapping, simulation, statistics) to stderr at the end
//!   of the run (equivalent to setting `MCSCHED_PROFILE=1`);
//! * `--obs-trace PATH` — enable structured tracing and write the span
//!   timeline as Chrome-trace JSON (loadable in Perfetto /
//!   `chrome://tracing`) at the end of the run;
//! * `--obs-journal PATH` — enable tracing and write the deterministic
//!   JSONL event journal (no timestamps or thread ids; byte-identical
//!   across reruns of one configuration);
//! * `--obs-metrics PATH` — write the metrics-registry snapshot (counters,
//!   gauges, histograms) as an aligned table, or CSV when `PATH` ends in
//!   `.csv`;
//! * `--obs-dir PATH` — fleet observability: write a
//!   `run-<shard>.manifest.json` + heartbeat into `PATH` while the run is
//!   active (refreshed per completed data point) and the per-shard
//!   deterministic journal + metrics JSON exports at the end. All shards of
//!   a fleet share one directory; `mcsched-top` renders the live aggregate
//!   view and `mcsched-obs-merge` unions the finished exports;
//! * `--quiet` — silence informational stderr lines (progress, cache
//!   summaries, profile output); genuine warnings still print.
//!
//! Each `--obs-*`/`--quiet` flag has an environment equivalent
//! (`MCSCHED_OBS_TRACE`, `MCSCHED_OBS_JOURNAL`, `MCSCHED_OBS_METRICS`,
//! `MCSCHED_OBS_DIR`, `MCSCHED_QUIET`; flags win), and `MCSCHED_OBS=1`
//! enables tracing with no export — see [`mcsched_obs::ObsOptions`].
//!
//! Malformed values of numeric flags (`--threads abc`, `--ci 1.5`, a
//! missing value) are hard errors: the binaries print the problem and exit
//! with status 2 instead of silently falling back to defaults.

use crate::campaign::{CampaignConfig, CampaignResult};
use crate::mu_sweep::{MuSweepConfig, MuSweepPoint};
use crate::report;
use crate::scenario::combo_requests;
use mcsched_core::{AllocationProcedure, PolicyKind, PolicyRegistry, SchedError};
use mcsched_stats::BootstrapConfig;
use mcsched_workload::{Trace, TraceSource, WorkloadCatalog, WorkloadRequest, WorkloadSource};
use std::path::PathBuf;
use std::sync::Arc;

/// Parsed command-line options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CliOptions {
    /// Run the paper-scale configuration.
    pub full: bool,
    /// Override for the number of combinations.
    pub combinations: Option<usize>,
    /// Override for the PTG counts.
    pub ptg_counts: Option<Vec<usize>>,
    /// Constraint-policy names to compare (resolved through the registry).
    pub strategies: Option<Vec<String>>,
    /// Allocation-procedure name override.
    pub allocation: Option<String>,
    /// Workload-source spec override (resolved through the catalog).
    pub workload: Option<String>,
    /// Trace file to replay instead of generating workloads.
    pub trace: Option<PathBuf>,
    /// Path to export the run's workloads as a replayable trace.
    pub export_trace: Option<PathBuf>,
    /// Number of paired replications (`--replications`).
    pub replications: Option<usize>,
    /// Confidence level for bootstrap intervals (`--ci`).
    pub ci: Option<f64>,
    /// Worker threads (0 = all cores).
    pub threads: Option<usize>,
    /// Base random seed override.
    pub seed: Option<u64>,
    /// Optional CSV output path.
    pub csv: Option<PathBuf>,
    /// Cell-cache directory (`--cache-dir`).
    pub cache_dir: Option<PathBuf>,
    /// Clear the cache directory instead of resuming from it
    /// (`--no-resume`).
    pub no_resume: bool,
    /// `Some((index, of))` evaluates only one partition of the cell grid
    /// (`--shard i/N`).
    pub shard: Option<(usize, usize)>,
    /// Narrate per-data-point progress on stderr (`--progress`).
    pub progress: bool,
    /// Print per-phase wall-clock timings on stderr (`--profile`).
    pub profile: bool,
    /// Observability exports and sink verbosity (`--obs-trace`,
    /// `--obs-journal`, `--obs-metrics`, `--quiet`).
    pub obs: mcsched_obs::ObsOptions,
}

/// Takes the value of a flag, erroring out when the argument list ends
/// instead.
fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next()
        .ok_or_else(|| format!("flag `{flag}` expects a value"))
}

/// Parses the value of a numeric flag, erroring out on malformed input —
/// `--threads abc` must abort the run, not silently fall back to the
/// default thread count.
fn numeric<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| {
        format!(
            "flag `{flag}` expects a {}, got `{raw}`",
            std::any::type_name::<T>()
                .rsplit("::")
                .next()
                .unwrap_or("number")
        )
    })
}

impl CliOptions {
    /// Parses options from an iterator of argument strings (without the
    /// program name). Unknown flags are ignored with a warning on stderr;
    /// malformed or missing values of known flags are errors.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed flag value
    /// (binaries report it and exit with status 2 — see
    /// [`CliOptions::from_env`]).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = CliOptions::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--no-resume" => opts.no_resume = true,
                "--progress" => opts.progress = true,
                "--profile" => opts.profile = true,
                "--combinations" => {
                    opts.combinations = Some(numeric(&arg, &value(&mut it, &arg)?)?);
                }
                "--ptgs" => {
                    opts.ptg_counts = Some(
                        value(&mut it, &arg)?
                            .split(',')
                            .map(|x| numeric(&arg, x.trim()))
                            .collect::<Result<_, _>>()?,
                    );
                }
                "--strategies" => {
                    opts.strategies = Some(
                        value(&mut it, &arg)?
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .collect(),
                    );
                }
                "--allocation" => {
                    opts.allocation = Some(value(&mut it, &arg)?);
                }
                "--workload" => {
                    opts.workload = Some(value(&mut it, &arg)?);
                }
                "--trace" => {
                    opts.trace = Some(PathBuf::from(value(&mut it, &arg)?));
                }
                "--export-trace" => {
                    opts.export_trace = Some(PathBuf::from(value(&mut it, &arg)?));
                }
                "--replications" => {
                    opts.replications = Some(numeric(&arg, &value(&mut it, &arg)?)?);
                }
                "--ci" => {
                    let raw = value(&mut it, &arg)?;
                    let level: f64 = numeric(&arg, &raw)?;
                    if !(level > 0.0 && level < 1.0) {
                        return Err(format!(
                            "flag `--ci` expects a confidence level strictly between 0 and 1, \
                             got `{raw}`"
                        ));
                    }
                    opts.ci = Some(level);
                }
                "--threads" => {
                    opts.threads = Some(numeric(&arg, &value(&mut it, &arg)?)?);
                }
                "--seed" => {
                    opts.seed = Some(numeric(&arg, &value(&mut it, &arg)?)?);
                }
                "--csv" => {
                    opts.csv = Some(PathBuf::from(value(&mut it, &arg)?));
                }
                "--cache-dir" => {
                    opts.cache_dir = Some(PathBuf::from(value(&mut it, &arg)?));
                }
                "--shard" => {
                    let raw = value(&mut it, &arg)?;
                    let (index, of) = raw.split_once('/').ok_or_else(|| {
                        format!("flag `--shard` expects `i/N` (e.g. `0/3`), got `{raw}`")
                    })?;
                    let index: usize = numeric(&arg, index.trim())?;
                    let of: usize = numeric(&arg, of.trim())?;
                    if of == 0 || index >= of {
                        return Err(format!(
                            "flag `--shard` expects an index below the shard count \
                             (i < N, N > 0), got `{raw}`"
                        ));
                    }
                    opts.shard = Some((index, of));
                }
                "--quiet" => opts.obs.quiet = true,
                "--obs-trace" => {
                    opts.obs.trace = Some(PathBuf::from(value(&mut it, &arg)?));
                }
                "--obs-journal" => {
                    opts.obs.journal = Some(PathBuf::from(value(&mut it, &arg)?));
                }
                "--obs-metrics" => {
                    opts.obs.metrics = Some(PathBuf::from(value(&mut it, &arg)?));
                }
                "--obs-dir" => {
                    opts.obs.dir = Some(PathBuf::from(value(&mut it, &arg)?));
                }
                other => eprintln!("warning: ignoring unknown argument `{other}`"),
            }
        }
        Ok(opts)
    }

    /// Parses the current process arguments, exiting with status 2 on a
    /// malformed flag value. Also activates the run's instrumentation:
    /// `--profile` enables phase timing, and the merged `--obs-*`/
    /// environment options enable tracing and configure the stderr sink
    /// (flags take precedence over `MCSCHED_OBS_*` variables).
    pub fn from_env() -> Self {
        let mut opts = Self::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        if opts.profile {
            mcsched_core::profile::enable();
        }
        opts.obs = opts.obs.or(mcsched_obs::ObsOptions::from_env());
        opts.obs.run = Some(mcsched_obs::manifest::shard_label(opts.shard));
        opts.obs.activate();
        mcsched_obs::set_thread_label("main");
        opts
    }

    /// Ends the run's instrumentation: prints the per-phase profile to
    /// stderr when `--profile` (or `MCSCHED_PROFILE=1`) is active, then
    /// drains the trace buffers and writes every requested `--obs-*`
    /// artefact. Binaries call this as their last statement; it is a no-op
    /// otherwise.
    pub fn finish(&self) {
        mcsched_core::profile::report();
        self.obs.finish();
    }

    /// Resolves the `--allocation` override into the built-in procedure
    /// family (custom allocation policies are dynamic and assembled through
    /// `ConcurrentScheduler::builder`, not through `SchedulerConfig`).
    fn resolve_allocation(&self) -> Result<Option<AllocationProcedure>, SchedError> {
        match &self.allocation {
            None => Ok(None),
            Some(name) => AllocationProcedure::from_name(name)
                .map(Some)
                .ok_or_else(|| SchedError::UnknownPolicy {
                    kind: PolicyKind::Allocation,
                    name: name.clone(),
                    known: PolicyRegistry::builtin().allocation_names(),
                }),
        }
    }

    /// Resolves the `--trace` / `--workload` overrides into a workload
    /// source: a replayed trace takes precedence over a generated spec.
    fn resolve_source(&self) -> Result<Option<Arc<dyn WorkloadSource>>, SchedError> {
        if let Some(path) = &self.trace {
            let trace = Trace::read_file(path)?;
            return Ok(Some(Arc::new(TraceSource::new(trace))));
        }
        match &self.workload {
            None => Ok(None),
            Some(spec) => WorkloadCatalog::builtin().resolve(spec).map(Some),
        }
    }

    /// Applies the options to a campaign configuration built from
    /// `paper`/`quick` defaults. `--strategies` names are resolved through
    /// the built-in [`PolicyRegistry`], `--workload`/`--trace` through the
    /// [`WorkloadCatalog`].
    ///
    /// # Errors
    ///
    /// [`SchedError::UnknownPolicy`] for unresolvable `--strategies`,
    /// `--allocation` or `--workload` names; [`SchedError::InvalidConfig`]
    /// for malformed specs or unreadable traces.
    pub fn configure_campaign(
        &self,
        mut config: CampaignConfig,
    ) -> Result<CampaignConfig, SchedError> {
        if let Some(c) = self.combinations {
            config.combinations = c;
        }
        if let Some(source) = self.resolve_source()? {
            config.source = source;
        }
        if let Some(p) = &self.ptg_counts {
            config.ptg_counts = p.clone();
        }
        if let Some(names) = &self.strategies {
            let registry = PolicyRegistry::builtin();
            config.strategies = names
                .iter()
                .map(|n| registry.constraint(n))
                .collect::<Result<_, _>>()?;
        }
        if let Some(a) = self.resolve_allocation()? {
            config.base.allocation = a;
        }
        if let Some(r) = self.replications {
            config.replications = r.max(1);
        }
        config.replications = self.clamp_trace_replications(config.replications);
        if let Some(t) = self.threads {
            config.threads = t;
        }
        if let Some(s) = self.seed {
            config.seed = s;
        }
        if let Some(dir) = &self.cache_dir {
            config.cache_dir = Some(dir.clone());
        }
        if self.no_resume {
            config.resume = false;
        }
        if self.progress {
            config.progress = true;
        }
        if let Some(shard) = self.shard {
            self.warn_uncached_shard(config.cache_dir.is_none());
            config.shard = Some(shard);
        }
        config.obs_dir = self.obs.dir.clone();
        Ok(config)
    }

    /// Applies the options to a µ-sweep configuration (`--strategies` does
    /// not apply: the sweep derives its policies from the µ grid).
    ///
    /// # Errors
    ///
    /// [`SchedError::UnknownPolicy`] for an unresolvable `--allocation`
    /// name.
    pub fn configure_mu_sweep(
        &self,
        mut config: MuSweepConfig,
    ) -> Result<MuSweepConfig, SchedError> {
        if let Some(c) = self.combinations {
            config.combinations = c;
        }
        if let Some(source) = self.resolve_source()? {
            config.source = source;
        }
        if let Some(p) = &self.ptg_counts {
            config.ptg_counts = p.clone();
        }
        if let Some(a) = self.resolve_allocation()? {
            config.base.allocation = a;
        }
        if let Some(r) = self.replications {
            config.replications = r.max(1);
        }
        config.replications = self.clamp_trace_replications(config.replications);
        if let Some(t) = self.threads {
            config.threads = t;
        }
        if let Some(s) = self.seed {
            config.seed = s;
        }
        if let Some(dir) = &self.cache_dir {
            config.cache_dir = Some(dir.clone());
        }
        if self.no_resume {
            config.resume = false;
        }
        if self.progress {
            config.progress = true;
        }
        if let Some(shard) = self.shard {
            self.warn_uncached_shard(config.cache_dir.is_none());
            config.shard = Some(shard);
        }
        config.obs_dir = self.obs.dir.clone();
        Ok(config)
    }

    /// A sharded run's stdout tables are partial (NaN placeholders for
    /// skipped cells); its *product* is the cache directory the merge step
    /// collects. Sharding without `--cache-dir` therefore computes a
    /// partition and throws it away — legal (e.g. for timing), but worth a
    /// loud warning.
    fn warn_uncached_shard(&self, uncached: bool) {
        if uncached {
            eprintln!(
                "warning: --shard without --cache-dir computes a partition but persists \
                 nothing; the skipped cells render as NaN and cannot be merged later"
            );
        }
    }

    /// A replayed trace holds one fixed workload per combination: extra
    /// replications would re-evaluate byte-identical draws and shrink the
    /// printed intervals on zero new information. Clamp to one replication
    /// (with a warning) whenever `--trace` is in effect.
    fn clamp_trace_replications(&self, replications: usize) -> usize {
        if self.trace.is_some() && replications > 1 {
            eprintln!(
                "warning: --trace replays fixed workloads; --replications {replications} would \
                 only duplicate them — running a single replication"
            );
            1
        } else {
            replications
        }
    }

    /// Whether the run asked for interval estimates: more than one
    /// replication (the single-replication tables stay byte-identical to the
    /// pre-statistics harness) or an explicit `--ci` level.
    #[must_use]
    pub fn wants_ci(&self, replications: usize) -> bool {
        replications > 1 || self.ci.is_some()
    }

    /// The bootstrap configuration of the run's reports: default resamples,
    /// the `--ci` level (default 0.95) and a seed derived from the campaign
    /// seed, so a rerun with the same flags reprints identical intervals.
    #[must_use]
    pub fn ci_config(&self, seed: u64) -> BootstrapConfig {
        BootstrapConfig::seeded(seed).with_level(self.ci.unwrap_or(0.95))
    }

    /// Unwraps a configuration result for the experiment binaries: prints
    /// the error (e.g. an unknown `--strategies` name with the list of
    /// registered policies) and exits with status 2 on failure.
    pub fn or_exit<T>(result: Result<T, SchedError>) -> T {
        result.unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// Exports every workload a *single-replication* run with this shape
    /// would consume — `ptg_counts × combinations` generation requests
    /// against `source` — as a replayable JSON trace to the
    /// `--export-trace` path, if any. Traces are a single-replication
    /// format (replay identifies workloads by combination label, which
    /// replications share), so `replications > 1` records replication 0
    /// only and warns. Errors are reported on stderr rather than
    /// panicking, mirroring [`CliOptions::maybe_write_csv`].
    pub fn maybe_export_trace(
        &self,
        source: &dyn WorkloadSource,
        ptg_counts: &[usize],
        combinations: usize,
        seed: u64,
        replications: usize,
    ) {
        let Some(path) = &self.export_trace else {
            return;
        };
        if replications > 1 {
            eprintln!(
                "warning: traces hold one workload per combination; exporting replication 0 of \
                 {replications} (a --trace replay runs a single replication)"
            );
        }
        let label = source.short_label();
        let requests: Vec<WorkloadRequest> = ptg_counts
            .iter()
            .flat_map(|&count| combo_requests(&label, count, combinations, seed))
            .collect();
        match Trace::record(source, &requests, seed).and_then(|t| t.write_file(path)) {
            Ok(()) => println!(
                "trace with {} workloads written to {}",
                requests.len(),
                path.display()
            ),
            Err(e) => eprintln!("warning: could not export trace {}: {e}", path.display()),
        }
    }

    /// [`CliOptions::maybe_export_trace`] for a campaign configuration.
    pub fn maybe_export_campaign_trace(&self, config: &CampaignConfig) {
        self.maybe_export_trace(
            config.source.as_ref(),
            &config.ptg_counts,
            config.combinations,
            config.seed,
            config.replications,
        );
    }

    /// [`CliOptions::maybe_export_trace`] for a µ-sweep configuration.
    pub fn maybe_export_mu_sweep_trace(&self, config: &MuSweepConfig) {
        self.maybe_export_trace(
            config.source.as_ref(),
            &config.ptg_counts,
            config.combinations,
            config.seed,
            config.replications,
        );
    }

    /// Prints a campaign result as the run's table: interval cells
    /// (`mean ±hw`) when the run asked for statistics, the byte-stable plain
    /// table otherwise. Shared by the fig3/fig4/fig5 binaries.
    pub fn print_campaign_table(&self, config: &CampaignConfig, result: &CampaignResult) {
        if self.wants_ci(config.replications) {
            println!(
                "{}",
                report::table_campaign_ci(result, &self.ci_config(config.seed))
            );
        } else {
            println!("{}", report::table_campaign(result));
        }
    }

    /// Writes the campaign CSV matching [`CliOptions::print_campaign_table`]
    /// to the `--csv` path, if any. Rendered lazily — the per-cell bootstrap
    /// is not repeated when no CSV was requested.
    pub fn write_campaign_csv(&self, config: &CampaignConfig, result: &CampaignResult) {
        if self.csv.is_none() {
            return;
        }
        self.maybe_write_csv(&if self.wants_ci(config.replications) {
            report::csv_campaign_ci(result, &self.ci_config(config.seed))
        } else {
            report::csv_campaign(result)
        });
    }

    /// [`CliOptions::print_campaign_table`] for a µ sweep.
    pub fn print_mu_sweep_table(&self, config: &MuSweepConfig, points: &[MuSweepPoint]) {
        if self.wants_ci(config.replications) {
            println!(
                "{}",
                report::table_mu_sweep_ci(points, &self.ci_config(config.seed))
            );
        } else {
            println!("{}", report::table_mu_sweep(points));
        }
    }

    /// [`CliOptions::write_campaign_csv`] for a µ sweep.
    pub fn write_mu_sweep_csv(&self, config: &MuSweepConfig, points: &[MuSweepPoint]) {
        if self.csv.is_none() {
            return;
        }
        self.maybe_write_csv(&if self.wants_ci(config.replications) {
            report::csv_mu_sweep_ci(points, &self.ci_config(config.seed))
        } else {
            report::csv_mu_sweep(points)
        });
    }

    /// Writes `csv` to the configured path, if any, reporting errors on
    /// stderr rather than panicking.
    pub fn maybe_write_csv(&self, csv: &str) {
        if let Some(path) = &self.csv {
            if let Err(e) = std::fs::write(path, csv) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("CSV written to {}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_ptg::gen::PtgClass;

    fn parse(args: &[&str]) -> CliOptions {
        CliOptions::parse(args.iter().map(|s| s.to_string())).expect("arguments parse")
    }

    fn parse_err(args: &[&str]) -> String {
        CliOptions::parse(args.iter().map(|s| s.to_string()))
            .expect_err("arguments must be rejected")
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&[
            "--full",
            "--combinations",
            "7",
            "--ptgs",
            "2,6",
            "--threads",
            "3",
            "--seed",
            "11",
            "--csv",
            "/tmp/out.csv",
            "--cache-dir",
            "/tmp/cells",
            "--no-resume",
            "--progress",
        ]);
        assert!(o.full);
        assert_eq!(o.combinations, Some(7));
        assert_eq!(o.ptg_counts, Some(vec![2, 6]));
        assert_eq!(o.threads, Some(3));
        assert_eq!(o.seed, Some(11));
        assert_eq!(o.csv, Some(PathBuf::from("/tmp/out.csv")));
        assert_eq!(o.cache_dir, Some(PathBuf::from("/tmp/cells")));
        assert!(o.no_resume);
        assert!(o.progress);
    }

    #[test]
    fn malformed_numeric_values_are_hard_errors() {
        // The original parser swallowed `--threads abc` into the default
        // thread count; that must be a loud failure instead.
        assert!(parse_err(&["--threads", "abc"]).contains("--threads"));
        assert!(parse_err(&["--combinations", "-1"]).contains("--combinations"));
        assert!(parse_err(&["--replications", "2.5"]).contains("--replications"));
        assert!(parse_err(&["--seed", "0x5EED"]).contains("--seed"));
        assert!(parse_err(&["--ptgs", "2,x,6"]).contains("--ptgs"));
        assert!(parse_err(&["--ci", "nope"]).contains("--ci"));
        // Out-of-range confidence levels are as wrong as non-numbers.
        assert!(parse_err(&["--ci", "1.5"]).contains("between 0 and 1"));
        assert!(parse_err(&["--ci", "0"]).contains("between 0 and 1"));
    }

    #[test]
    fn missing_flag_values_are_hard_errors() {
        assert!(parse_err(&["--threads"]).contains("expects a value"));
        assert!(parse_err(&["--cache-dir"]).contains("expects a value"));
        assert!(parse_err(&["--workload"]).contains("expects a value"));
        assert!(parse_err(&["--full", "--seed"]).contains("--seed"));
    }

    #[test]
    fn cache_flags_apply_to_both_configs() {
        let o = parse(&["--cache-dir", "/tmp/cells", "--no-resume", "--progress"]);
        let cfg = o
            .configure_campaign(CampaignConfig::quick(PtgClass::Random))
            .unwrap();
        assert_eq!(cfg.cache_dir, Some(PathBuf::from("/tmp/cells")));
        assert!(!cfg.resume);
        assert!(cfg.progress);
        let sweep = o.configure_mu_sweep(MuSweepConfig::quick()).unwrap();
        assert_eq!(sweep.cache_dir, Some(PathBuf::from("/tmp/cells")));
        assert!(!sweep.resume);
        assert!(sweep.progress);
        // Defaults leave caching off and resume on.
        let plain = parse(&[])
            .configure_campaign(CampaignConfig::quick(PtgClass::Random))
            .unwrap();
        assert_eq!(plain.cache_dir, None);
        assert!(plain.resume);
        assert!(!plain.progress);
    }

    #[test]
    fn shard_flag_parses_and_applies_to_both_configs() {
        let o = parse(&["--shard", "1/3", "--cache-dir", "/tmp/cells"]);
        assert_eq!(o.shard, Some((1, 3)));
        let cfg = o
            .configure_campaign(CampaignConfig::quick(PtgClass::Random))
            .unwrap();
        assert_eq!(cfg.shard, Some((1, 3)));
        let sweep = o.configure_mu_sweep(MuSweepConfig::quick()).unwrap();
        assert_eq!(sweep.shard, Some((1, 3)));
        // Whitespace tolerated, like the other list-ish flags.
        assert_eq!(parse(&["--shard", "0 / 16"]).shard, Some((0, 16)));
        // Unsharded runs keep the default.
        let plain = parse(&[])
            .configure_campaign(CampaignConfig::quick(PtgClass::Random))
            .unwrap();
        assert_eq!(plain.shard, None);
    }

    #[test]
    fn malformed_shard_specs_are_hard_errors() {
        assert!(parse_err(&["--shard", "3"]).contains("i/N"));
        assert!(parse_err(&["--shard", "a/b"]).contains("--shard"));
        assert!(parse_err(&["--shard", "3/3"]).contains("i < N"));
        assert!(parse_err(&["--shard", "0/0"]).contains("i < N"));
        assert!(parse_err(&["--shard"]).contains("expects a value"));
    }

    #[test]
    fn obs_flags_parse_into_the_options() {
        let o = parse(&[
            "--obs-trace",
            "/tmp/t.json",
            "--obs-journal",
            "/tmp/j.jsonl",
            "--obs-metrics",
            "/tmp/m.csv",
            "--obs-dir",
            "/tmp/fleet",
            "--quiet",
        ]);
        assert_eq!(o.obs.trace, Some(PathBuf::from("/tmp/t.json")));
        assert_eq!(o.obs.journal, Some(PathBuf::from("/tmp/j.jsonl")));
        assert_eq!(o.obs.metrics, Some(PathBuf::from("/tmp/m.csv")));
        assert_eq!(o.obs.dir, Some(PathBuf::from("/tmp/fleet")));
        assert!(o.obs.quiet);
        assert!(o.obs.wants_export());
        assert!(parse_err(&["--obs-trace"]).contains("expects a value"));
        assert!(parse_err(&["--obs-dir"]).contains("expects a value"));
        let plain = parse(&[]);
        assert!(!plain.obs.wants_export());
        assert!(!plain.obs.quiet);
    }

    #[test]
    fn obs_dir_applies_to_both_configs() {
        let o = parse(&["--obs-dir", "/tmp/fleet"]);
        let cfg = o
            .configure_campaign(CampaignConfig::quick(PtgClass::Random))
            .unwrap();
        assert_eq!(cfg.obs_dir, Some(PathBuf::from("/tmp/fleet")));
        let sweep = o.configure_mu_sweep(MuSweepConfig::quick()).unwrap();
        assert_eq!(sweep.obs_dir, Some(PathBuf::from("/tmp/fleet")));
        let plain = parse(&[])
            .configure_campaign(CampaignConfig::quick(PtgClass::Random))
            .unwrap();
        assert_eq!(plain.obs_dir, None);
    }

    #[test]
    fn defaults_are_quick() {
        let o = parse(&[]);
        assert!(!o.full);
        assert_eq!(o.combinations, None);
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let o = parse(&["--bogus", "--full"]);
        assert!(o.full);
    }

    #[test]
    fn configure_campaign_applies_overrides() {
        let o = parse(&["--combinations", "3", "--ptgs", "4", "--seed", "9"]);
        let cfg = o
            .configure_campaign(CampaignConfig::quick(PtgClass::Random))
            .unwrap();
        assert_eq!(cfg.combinations, 3);
        assert_eq!(cfg.ptg_counts, vec![4]);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn configure_mu_sweep_applies_overrides() {
        let o = parse(&["--combinations", "2", "--threads", "1"]);
        let cfg = o.configure_mu_sweep(MuSweepConfig::quick()).unwrap();
        assert_eq!(cfg.combinations, 2);
        assert_eq!(cfg.threads, 1);
    }

    #[test]
    fn strategies_resolve_by_registry_name() {
        let o = parse(&["--strategies", "es, wps-work@0.5"]);
        let cfg = o
            .configure_campaign(CampaignConfig::quick(PtgClass::Random))
            .unwrap();
        let names: Vec<String> = cfg.strategies.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["ES".to_string(), "WPS-work".to_string()]);
    }

    #[test]
    fn unknown_strategy_or_allocation_names_error_out() {
        let o = parse(&["--strategies", "bogus"]);
        assert!(matches!(
            o.configure_campaign(CampaignConfig::quick(PtgClass::Random)),
            Err(SchedError::UnknownPolicy { .. })
        ));
        let o = parse(&["--allocation", "bogus"]);
        assert!(matches!(
            o.configure_mu_sweep(MuSweepConfig::quick()),
            Err(SchedError::UnknownPolicy { .. })
        ));
    }

    #[test]
    fn workload_spec_overrides_the_campaign_source() {
        let o = parse(&["--workload", "daggen@n=10,width=0.5"]);
        let cfg = o
            .configure_campaign(CampaignConfig::quick(PtgClass::Random))
            .unwrap();
        assert_eq!(cfg.source.short_label(), "daggen");
        let sweep = o.configure_mu_sweep(MuSweepConfig::quick()).unwrap();
        assert_eq!(sweep.source.short_label(), "daggen");
    }

    #[test]
    fn bogus_workload_specs_and_missing_traces_error_out() {
        let o = parse(&["--workload", "bogus@x=1"]);
        assert!(matches!(
            o.configure_campaign(CampaignConfig::quick(PtgClass::Random)),
            Err(SchedError::UnknownPolicy { .. })
        ));
        let o = parse(&["--trace", "/nonexistent/trace.json"]);
        assert!(matches!(
            o.configure_campaign(CampaignConfig::quick(PtgClass::Random)),
            Err(SchedError::InvalidConfig(_))
        ));
    }

    #[test]
    fn trace_flags_parse() {
        let o = parse(&[
            "--workload",
            "strassen",
            "--trace",
            "in.json",
            "--export-trace",
            "out.json",
        ]);
        assert_eq!(o.workload.as_deref(), Some("strassen"));
        assert_eq!(o.trace, Some(PathBuf::from("in.json")));
        assert_eq!(o.export_trace, Some(PathBuf::from("out.json")));
    }

    #[test]
    fn replications_and_ci_flags_parse_and_apply() {
        let o = parse(&["--replications", "4", "--ci", "0.99"]);
        assert_eq!(o.replications, Some(4));
        assert_eq!(o.ci, Some(0.99));
        let cfg = o
            .configure_campaign(CampaignConfig::quick(PtgClass::Random))
            .unwrap();
        assert_eq!(cfg.replications, 4);
        let sweep = o.configure_mu_sweep(MuSweepConfig::quick()).unwrap();
        assert_eq!(sweep.replications, 4);
        assert!(o.wants_ci(cfg.replications));
        let bc = o.ci_config(cfg.seed);
        assert_eq!(bc.level, 0.99);
        assert_eq!(bc, o.ci_config(cfg.seed), "derived CI config is stable");
    }

    #[test]
    fn trace_replay_clamps_replications_to_one() {
        // A trace replays fixed draws; extra replications would fabricate
        // precision, so the combination clamps (the --trace resolution
        // itself fails on the missing file, which is irrelevant here — the
        // clamp is observable through the helper).
        let o = parse(&["--trace", "in.json", "--replications", "4"]);
        assert_eq!(o.clamp_trace_replications(4), 1);
        let o = parse(&["--replications", "4"]);
        assert_eq!(o.clamp_trace_replications(4), 4);
    }

    #[test]
    fn default_run_does_not_want_ci_and_clamps_zero_replications() {
        let o = parse(&[]);
        assert!(!o.wants_ci(1));
        assert!(o.wants_ci(2), "replications alone enable intervals");
        assert_eq!(o.ci_config(0).level, 0.95);
        // --replications 0 parses but clamps to 1 at configuration time.
        let o = parse(&["--replications", "0"]);
        let cfg = o
            .configure_campaign(CampaignConfig::quick(PtgClass::Random))
            .unwrap();
        assert_eq!(cfg.replications, 1);
    }

    #[test]
    fn allocation_override_resolves_to_the_enum_family() {
        let o = parse(&["--allocation", "scrap"]);
        let cfg = o
            .configure_campaign(CampaignConfig::quick(PtgClass::Random))
            .unwrap();
        assert_eq!(cfg.base.allocation, AllocationProcedure::Scrap);
    }
}
