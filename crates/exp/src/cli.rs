//! Minimal command-line option handling shared by the experiment binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--full` — run the paper's full configuration (25 combinations,
//!   2/4/6/8/10 PTGs); without it a reduced "quick" configuration is used so
//!   that the binaries finish in seconds;
//! * `--combinations N` — override the number of random combinations;
//! * `--ptgs a,b,c` — override the list of concurrent-PTG counts;
//! * `--threads N` — number of worker threads (0 = all cores);
//! * `--seed S` — base random seed;
//! * `--csv PATH` — also write the raw results as CSV to `PATH`.

use crate::campaign::CampaignConfig;
use crate::mu_sweep::MuSweepConfig;
use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CliOptions {
    /// Run the paper-scale configuration.
    pub full: bool,
    /// Override for the number of combinations.
    pub combinations: Option<usize>,
    /// Override for the PTG counts.
    pub ptg_counts: Option<Vec<usize>>,
    /// Worker threads (0 = all cores).
    pub threads: Option<usize>,
    /// Base random seed override.
    pub seed: Option<u64>,
    /// Optional CSV output path.
    pub csv: Option<PathBuf>,
}

impl CliOptions {
    /// Parses options from an iterator of argument strings (without the
    /// program name). Unknown flags are ignored with a warning on stderr.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = CliOptions::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--combinations" => {
                    opts.combinations = it.next().and_then(|v| v.parse().ok());
                }
                "--ptgs" => {
                    opts.ptg_counts = it
                        .next()
                        .map(|v| v.split(',').filter_map(|x| x.parse().ok()).collect());
                }
                "--threads" => {
                    opts.threads = it.next().and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    opts.seed = it.next().and_then(|v| v.parse().ok());
                }
                "--csv" => {
                    opts.csv = it.next().map(PathBuf::from);
                }
                other => eprintln!("warning: ignoring unknown argument `{other}`"),
            }
        }
        opts
    }

    /// Parses the current process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Applies the options to a campaign configuration built from
    /// `paper`/`quick` defaults.
    pub fn configure_campaign(&self, mut config: CampaignConfig) -> CampaignConfig {
        if let Some(c) = self.combinations {
            config.combinations = c;
        }
        if let Some(p) = &self.ptg_counts {
            config.ptg_counts = p.clone();
        }
        if let Some(t) = self.threads {
            config.threads = t;
        }
        if let Some(s) = self.seed {
            config.seed = s;
        }
        config
    }

    /// Applies the options to a µ-sweep configuration.
    pub fn configure_mu_sweep(&self, mut config: MuSweepConfig) -> MuSweepConfig {
        if let Some(c) = self.combinations {
            config.combinations = c;
        }
        if let Some(p) = &self.ptg_counts {
            config.ptg_counts = p.clone();
        }
        if let Some(t) = self.threads {
            config.threads = t;
        }
        if let Some(s) = self.seed {
            config.seed = s;
        }
        config
    }

    /// Writes `csv` to the configured path, if any, reporting errors on
    /// stderr rather than panicking.
    pub fn maybe_write_csv(&self, csv: &str) {
        if let Some(path) = &self.csv {
            if let Err(e) = std::fs::write(path, csv) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("CSV written to {}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_ptg::gen::PtgClass;

    fn parse(args: &[&str]) -> CliOptions {
        CliOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&[
            "--full",
            "--combinations",
            "7",
            "--ptgs",
            "2,6",
            "--threads",
            "3",
            "--seed",
            "11",
            "--csv",
            "/tmp/out.csv",
        ]);
        assert!(o.full);
        assert_eq!(o.combinations, Some(7));
        assert_eq!(o.ptg_counts, Some(vec![2, 6]));
        assert_eq!(o.threads, Some(3));
        assert_eq!(o.seed, Some(11));
        assert_eq!(o.csv, Some(PathBuf::from("/tmp/out.csv")));
    }

    #[test]
    fn defaults_are_quick() {
        let o = parse(&[]);
        assert!(!o.full);
        assert_eq!(o.combinations, None);
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let o = parse(&["--bogus", "--full"]);
        assert!(o.full);
    }

    #[test]
    fn configure_campaign_applies_overrides() {
        let o = parse(&["--combinations", "3", "--ptgs", "4", "--seed", "9"]);
        let cfg = o.configure_campaign(CampaignConfig::quick(PtgClass::Random));
        assert_eq!(cfg.combinations, 3);
        assert_eq!(cfg.ptg_counts, vec![4]);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn configure_mu_sweep_applies_overrides() {
        let o = parse(&["--combinations", "2", "--threads", "1"]);
        let cfg = o.configure_mu_sweep(MuSweepConfig::quick());
        assert_eq!(cfg.combinations, 2);
        assert_eq!(cfg.threads, 1);
    }
}
