//! Strategy-comparison campaigns (Figures 3, 4 and 5).
//!
//! Campaigns evaluate every strategy on *identical* scenario draws (common
//! random numbers) and, with [`CampaignConfig::replications`] > 1, repeat
//! the whole grid on fresh, deterministically derived seeds. Every cell
//! retains its per-run samples ([`CellSamples`]), so results support both
//! the paper's point-estimate tables (bit-identical to the pre-statistics
//! harness at one replication) and interval estimates: bootstrap confidence
//! intervals per cell and paired-difference orderings between strategies
//! ([`CampaignResult::paired_unfairness`] et al.).

use crate::cells;
use mcsched_core::policy::ConstraintPolicy;
use mcsched_core::{ConstraintStrategy, SchedError, SchedulerConfig};
use mcsched_ptg::gen::PtgClass;
use mcsched_stats::{PairedSamples, Samples};
use mcsched_workload::{GeneratorSource, WorkloadSource};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Configuration of a strategy-comparison campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The workload source producing the concurrent applications. The
    /// paper's classes map to [`GeneratorSource::from_class`]; any source
    /// resolved from the `mcsched-workload` catalog (DAGGEN configurations,
    /// mixtures, timed arrivals, replayed traces) slots in here.
    pub source: Arc<dyn WorkloadSource>,
    /// Numbers of concurrent PTGs to evaluate (the paper uses 2, 4, 6, 8, 10).
    pub ptg_counts: Vec<usize>,
    /// Number of random application combinations per data point (25 in the
    /// paper, i.e. 100 runs per point once multiplied by the 4 platforms).
    pub combinations: usize,
    /// The constraint policies to compare. Built-in strategies convert with
    /// [`ConstraintStrategy::to_policy`] (see [`CampaignConfig::policies`]);
    /// policies registered on a [`mcsched_core::PolicyRegistry`] — including
    /// user-defined ones — slot in by name.
    pub strategies: Vec<Arc<dyn ConstraintPolicy>>,
    /// Base scheduler configuration shared by all strategies.
    pub base: SchedulerConfig,
    /// Base random seed.
    pub seed: u64,
    /// Number of paired replications: how many times the full
    /// `ptg_counts × combinations` grid is redrawn on a fresh seed derived
    /// by [`crate::scenario::replication_seed`]. Within each replication all strategies see
    /// byte-identical workloads; 1 (the default) reproduces the
    /// pre-statistics harness exactly.
    pub replications: usize,
    /// Number of worker threads (0 = one per available core).
    pub threads: usize,
    /// Directory of the on-disk content-addressed cell cache (`--cache-dir`).
    /// `None` (the default) disables caching entirely: every cell is
    /// recomputed, exactly like the pre-runtime harness.
    pub cache_dir: Option<PathBuf>,
    /// Whether to serve cells already present in `cache_dir` (`true`, the
    /// default) or to clear the store and start cold (`--no-resume`). Only
    /// meaningful with a `cache_dir`.
    pub resume: bool,
    /// Whether to narrate one stderr line per completed data point
    /// (`--progress`). Never touches stdout, so the figure tables stay
    /// byte-identical.
    pub progress: bool,
    /// `Some((index, of))` runs only partition `index` of a deterministic
    /// `of`-way split of the cell grid (`--shard i/N`): out-of-partition
    /// cells are skipped entirely (not evaluated, not cached) and render as
    /// NaN. N such runs with disjoint `cache_dir`s fill disjoint caches;
    /// merge them (`mcsched-merge`) and re-run unsharded+warm to produce
    /// tables byte-identical to a single-process run. `None` (the default)
    /// evaluates everything.
    pub shard: Option<(usize, usize)>,
    /// Fleet obs directory (`--obs-dir`): the run writes a
    /// `run-<shard>.manifest.json` + heartbeat there while running and its
    /// per-shard journal/metrics exports at the end, so `mcsched-top` and
    /// `mcsched-obs-merge` can watch and union a sharded fleet. `None`
    /// (the default) records nothing.
    pub obs_dir: Option<PathBuf>,
}

impl CampaignConfig {
    /// Converts a set of built-in strategy constructors into campaign
    /// policies.
    pub fn policies(strategies: &[ConstraintStrategy]) -> Vec<Arc<dyn ConstraintPolicy>> {
        strategies.iter().map(|s| s.to_policy()).collect()
    }

    /// The paper's full configuration for one application class.
    pub fn paper(class: PtgClass) -> Self {
        let strategies = match class {
            PtgClass::Strassen => ConstraintStrategy::strassen_set(),
            PtgClass::Fft => ConstraintStrategy::paper_set_fft(),
            PtgClass::Random => ConstraintStrategy::paper_set(),
        };
        Self {
            source: Arc::new(GeneratorSource::from_class(class)),
            ptg_counts: vec![2, 4, 6, 8, 10],
            combinations: 25,
            strategies: Self::policies(&strategies),
            base: SchedulerConfig::default(),
            seed: 0x5EED,
            replications: 1,
            threads: 0,
            cache_dir: None,
            resume: true,
            progress: false,
            shard: None,
            obs_dir: None,
        }
    }

    /// A reduced configuration for quick runs, CI and benchmarks: fewer
    /// combinations and PTG counts but the same strategies.
    pub fn quick(class: PtgClass) -> Self {
        Self {
            ptg_counts: vec![2, 4],
            combinations: 2,
            ..Self::paper(class)
        }
    }
}

/// Per-run samples of one (PTG count, strategy) cell, in scenario order.
///
/// Within one cell, index `i` of every vector is the same scenario; across
/// the cells of one PTG count, index `i` of *different strategies* is also
/// the same scenario (common random numbers), which is what makes the
/// vectors pairable through [`mcsched_stats::PairedSamples`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellSamples {
    /// Per-run unfairness.
    pub unfairness: Samples,
    /// Per-run global makespan (seconds).
    pub makespan: Samples,
    /// Per-run makespan relative to the best strategy of the same run.
    pub relative_makespan: Samples,
}

/// Aggregated result for one (number of PTGs, strategy) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyPoint {
    /// Number of concurrent PTGs.
    pub num_ptgs: usize,
    /// Strategy name.
    pub strategy: String,
    /// Unfairness averaged over all runs of the cell.
    pub unfairness: f64,
    /// Plain average makespan over all runs (seconds).
    pub makespan: f64,
    /// Makespan divided by the best strategy's makespan of the same run,
    /// averaged over all runs.
    pub relative_makespan: f64,
    /// Number of runs aggregated.
    pub runs: usize,
    /// The raw per-run samples behind the means.
    pub samples: CellSamples,
}

impl StrategyPoint {
    /// Builds a point from its per-run samples (the means are the in-order
    /// sample means, matching the legacy accumulator bit-for-bit).
    #[must_use]
    pub fn from_samples(num_ptgs: usize, strategy: String, samples: CellSamples) -> Self {
        Self {
            num_ptgs,
            strategy,
            unfairness: samples.unfairness.mean(),
            makespan: samples.makespan.mean(),
            relative_makespan: samples.relative_makespan.mean(),
            runs: samples.unfairness.len(),
            samples,
        }
    }
}

/// Result of a campaign: one [`StrategyPoint`] per (PTG count, strategy).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Application class label.
    pub class: String,
    /// The aggregated points, ordered by PTG count then strategy.
    pub points: Vec<StrategyPoint>,
}

impl CampaignResult {
    /// Looks up one cell.
    pub fn point(&self, num_ptgs: usize, strategy: &str) -> Option<&StrategyPoint> {
        self.points
            .iter()
            .find(|p| p.num_ptgs == num_ptgs && p.strategy == strategy)
    }

    /// The distinct strategy names, in campaign order.
    pub fn strategies(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.strategy) {
                seen.push(p.strategy.clone());
            }
        }
        seen
    }

    /// The distinct PTG counts, ascending.
    pub fn ptg_counts(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.points.iter().map(|p| p.num_ptgs).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Paired per-run differences of a metric between two strategies of the
    /// same cell (`a - b`, run by run under common random numbers).
    /// `None` when either cell is missing or their run counts differ (which
    /// would mean the cells were not drawn from the same scenarios).
    pub fn paired(
        &self,
        num_ptgs: usize,
        a: &str,
        b: &str,
        metric: impl Fn(&CellSamples) -> &Samples,
    ) -> Option<PairedSamples> {
        let pa = metric(&self.point(num_ptgs, a)?.samples);
        let pb = metric(&self.point(num_ptgs, b)?.samples);
        if pa.len() != pb.len() {
            return None;
        }
        Some(PairedSamples::of(pa.values(), pb.values()))
    }

    /// [`CampaignResult::paired`] over the unfairness metric.
    pub fn paired_unfairness(&self, num_ptgs: usize, a: &str, b: &str) -> Option<PairedSamples> {
        self.paired(num_ptgs, a, b, |c| &c.unfairness)
    }

    /// [`CampaignResult::paired`] over the relative makespan metric.
    pub fn paired_relative_makespan(
        &self,
        num_ptgs: usize,
        a: &str,
        b: &str,
    ) -> Option<PairedSamples> {
        self.paired(num_ptgs, a, b, |c| &c.relative_makespan)
    }
}

/// One report label per policy. Display names are used as-is when unique;
/// policies sharing a display name (e.g. `wps-work@0.3` next to
/// `wps-work@0.7`, whose names are both `WPS-work`) fall back to their
/// parameter-carrying cache key so every row of the result stays
/// distinguishable and addressable through [`CampaignResult::point`].
fn strategy_labels(strategies: &[Arc<dyn ConstraintPolicy>]) -> Vec<String> {
    let names: Vec<String> = strategies.iter().map(|p| p.name()).collect();
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let duplicated = names
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other == name);
            if duplicated {
                strategies[i].cache_key()
            } else {
                name.clone()
            }
        })
        .collect()
}

/// Runs a campaign: for every replication, every PTG count, every
/// combination and every platform, evaluates all strategies on the same
/// workload draw and aggregates unfairness and (relative) makespans into
/// per-cell sample sets.
///
/// Work runs on the persistent work-stealing pool of `mcsched-runtime`
/// ([`CampaignConfig::threads`] workers): data points fan out at the outer
/// level and their scenarios as nested fan-outs within them, so neither
/// level serializes. With [`CampaignConfig::cache_dir`] set, every
/// (scenario, policy) cell is served from the content-addressed cell cache
/// when present and stored after evaluation, with one flush per completed
/// data point — re-runs skip finished work and interrupted runs resume from
/// the completed shards (see [`crate::cells`]).
///
/// Each scenario drives all strategies through one shared
/// [`mcsched_core::ScheduleContext`] (the paired-evaluation path), so the
/// dedicated baselines are simulated once per (platform, application) pair
/// and every strategy sees byte-identical workloads. Results are
/// deterministic because aggregation follows scenario order, not
/// completion order: output is byte-identical at any thread count and
/// whether cells came from the cache or from evaluation.
///
/// # Errors
///
/// Propagates workload-generation failures from
/// [`CampaignConfig::source`] (e.g. a replayed trace missing a requested
/// combination) and cache-directory failures from
/// [`CampaignConfig::cache_dir`].
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignResult, SchedError> {
    let labels = strategy_labels(&config.strategies);
    let job = cells::CellJob::new(
        format!("campaign:{}", config.source.short_label()),
        Arc::clone(&config.source),
        config.strategies.clone(),
        config.base,
        config.combinations,
        config.seed,
        config.replications,
        config.threads,
        config.cache_dir.as_deref(),
        config.resume,
        config.progress,
        config.ptg_counts.len(),
        config.shard,
        config.obs_dir.as_deref(),
    )?;

    // (num_ptgs, strategy index) -> per-run samples, aggregated in grid
    // order (identical to the sequential order of the legacy harness).
    let mut cells_map: BTreeMap<(usize, usize), CellSamples> = BTreeMap::new();
    for (num_ptgs, per_scenario) in job.run_grid(&config.ptg_counts)? {
        for outcomes in per_scenario {
            let best = outcomes
                .iter()
                .map(|o| o.makespan)
                .filter(|m| *m > 0.0)
                .fold(f64::INFINITY, f64::min);
            for (si, outcome) in outcomes.iter().enumerate() {
                let cell = cells_map.entry((num_ptgs, si)).or_default();
                cell.unfairness.push(outcome.unfairness);
                cell.makespan.push(outcome.makespan);
                cell.relative_makespan
                    .push(if best.is_finite() && best > 0.0 {
                        outcome.makespan / best
                    } else {
                        1.0
                    });
            }
        }
    }

    let points = cells_map
        .into_iter()
        .map(|((num_ptgs, si), cell)| {
            StrategyPoint::from_samples(num_ptgs, labels[si].clone(), cell)
        })
        .collect();

    Ok(CampaignResult {
        class: config.source.short_label(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_stats::BootstrapConfig;

    fn tiny_config() -> CampaignConfig {
        CampaignConfig {
            ptg_counts: vec![2],
            combinations: 1,
            strategies: CampaignConfig::policies(&[
                ConstraintStrategy::Selfish,
                ConstraintStrategy::EqualShare,
            ]),
            threads: 2,
            ..CampaignConfig::paper(PtgClass::Strassen)
        }
    }

    #[test]
    fn campaign_produces_one_point_per_cell() {
        let result = run_campaign(&tiny_config()).unwrap();
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.strategies(), vec!["S".to_string(), "ES".to_string()]);
        assert_eq!(result.ptg_counts(), vec![2]);
        for p in &result.points {
            // 1 combination × 4 platforms
            assert_eq!(p.runs, 4);
            assert!(p.makespan > 0.0);
            assert!(p.relative_makespan >= 1.0 - 1e-9);
            assert!(p.unfairness >= 0.0);
            // Samples back the means exactly (in-order sum).
            assert_eq!(p.samples.unfairness.len(), 4);
            assert_eq!(p.samples.unfairness.mean(), p.unfairness);
            assert_eq!(p.samples.makespan.mean(), p.makespan);
            assert_eq!(p.samples.relative_makespan.mean(), p.relative_makespan);
        }
    }

    #[test]
    fn relative_makespan_best_strategy_close_to_one() {
        let result = run_campaign(&tiny_config()).unwrap();
        let best: f64 = result
            .points
            .iter()
            .map(|p| p.relative_makespan)
            .fold(f64::INFINITY, f64::min);
        assert!(best >= 1.0 - 1e-9);
        assert!(
            best < 1.5,
            "some strategy should be near the per-run optimum"
        );
    }

    #[test]
    fn campaign_is_deterministic_regardless_of_threads() {
        let mut cfg = tiny_config();
        cfg.threads = 1;
        let a = run_campaign(&cfg).unwrap();
        cfg.threads = 4;
        let b = run_campaign(&cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cached_campaigns_reproduce_uncached_results_bit_for_bit() {
        let dir = std::env::temp_dir().join(format!(
            "mcsched-campaign-cache-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let baseline = run_campaign(&tiny_config()).unwrap();
        let mut cfg = tiny_config();
        cfg.cache_dir = Some(dir.clone());
        let cold = run_campaign(&cfg).unwrap();
        let warm = run_campaign(&cfg).unwrap();
        // PartialEq over retained Samples compares every f64 exactly: the
        // cold run matches the uncached baseline and the warm run (served
        // from disk) matches both.
        assert_eq!(cold, baseline);
        assert_eq!(warm, baseline);
        // no-resume clears the store and recomputes, still bit-identical.
        cfg.resume = false;
        let fresh = run_campaign(&cfg).unwrap();
        assert_eq!(fresh, baseline);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn paper_and_quick_configs_expose_expected_shape() {
        let paper = CampaignConfig::paper(PtgClass::Random);
        assert_eq!(paper.ptg_counts, vec![2, 4, 6, 8, 10]);
        assert_eq!(paper.combinations, 25);
        assert_eq!(paper.strategies.len(), 8);
        assert_eq!(paper.replications, 1);
        let quick = CampaignConfig::quick(PtgClass::Strassen);
        assert!(quick.combinations < paper.combinations);
        assert_eq!(quick.strategies.len(), 6);
    }

    #[test]
    fn same_named_policies_get_disambiguated_labels() {
        use mcsched_core::policy::WeightedShare;
        use mcsched_core::Characteristic;
        let config = CampaignConfig {
            strategies: vec![
                Arc::new(WeightedShare::new(Characteristic::Work, 0.3)),
                Arc::new(WeightedShare::new(Characteristic::Work, 0.7)),
            ],
            ..tiny_config()
        };
        let result = run_campaign(&config).unwrap();
        assert_eq!(
            result.strategies(),
            vec!["WPS-work@0.3".to_string(), "WPS-work@0.7".to_string()]
        );
        let a = result.point(2, "WPS-work@0.3").unwrap();
        let b = result.point(2, "WPS-work@0.7").unwrap();
        assert!(a.makespan > 0.0 && b.makespan > 0.0);
    }

    #[test]
    fn point_lookup() {
        let result = run_campaign(&tiny_config()).unwrap();
        assert!(result.point(2, "S").is_some());
        assert!(result.point(2, "WPS-width").is_none());
        assert!(result.point(4, "S").is_none());
    }

    #[test]
    fn replications_multiply_runs_and_change_later_draws_only() {
        let mut cfg = tiny_config();
        let single = run_campaign(&cfg).unwrap();
        cfg.replications = 3;
        let triple = run_campaign(&cfg).unwrap();
        for (a, b) in single.points.iter().zip(&triple.points) {
            assert_eq!(b.runs, 3 * a.runs);
            // Replication 0 draws exactly the single-replication scenarios:
            // the first `a.runs` samples coincide bit-for-bit.
            assert_eq!(
                &b.samples.unfairness.values()[..a.runs],
                a.samples.unfairness.values()
            );
            // Later replications are fresh draws, not repeats of the first.
            assert_ne!(
                &b.samples.makespan.values()[a.runs..2 * a.runs],
                &b.samples.makespan.values()[..a.runs]
            );
        }
    }

    #[test]
    fn paired_metrics_align_run_for_run() {
        let mut cfg = tiny_config();
        cfg.replications = 2;
        let result = run_campaign(&cfg).unwrap();
        let paired = result.paired_unfairness(2, "S", "ES").unwrap();
        assert_eq!(paired.len(), 8);
        let s = result.point(2, "S").unwrap();
        let es = result.point(2, "ES").unwrap();
        for (i, d) in paired.diffs().iter().enumerate() {
            let expect = s.samples.unfairness.values()[i] - es.samples.unfairness.values()[i];
            assert_eq!(*d, expect);
        }
        // Paired mean difference equals the difference of means.
        assert!((paired.mean_diff() - (s.unfairness - es.unfairness)).abs() < 1e-12);
        // CIs computed from the retained samples are deterministic.
        let bc = BootstrapConfig::seeded(9);
        assert_eq!(paired.bootstrap_ci(&bc), paired.bootstrap_ci(&bc));
        // Unknown strategies pair to None.
        assert!(result.paired_unfairness(2, "S", "nope").is_none());
        assert!(result.paired_relative_makespan(2, "S", "ES").is_some());
    }
}
