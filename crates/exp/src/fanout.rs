//! **Deprecated** legacy scenario fan-out: a throwaway `thread::scope`
//! executor kept only as the benchmark baseline for the persistent
//! work-stealing pool that replaced it.
//!
//! The campaign and µ-sweep harnesses now run on
//! [`mcsched_runtime::run_indexed`] — same deterministic-index-order
//! contract, but with persistent parked workers, per-worker deques with
//! stealing, and nested fan-outs. This module preserves the exact
//! pre-runtime implementation (fresh `std::thread::scope` per call, one
//! global result mutex, no nesting) so `bench_runtime` can measure the
//! replacement against it; it will be removed once that trajectory is
//! established. New code must use the runtime pool.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a configured thread count: `0` means one worker per available
/// core, anything else is taken literally (and clamped to the work size by
/// [`run_indexed`]).
#[deprecated(
    since = "0.1.0",
    note = "use `mcsched_runtime::resolve_threads` (same semantics, shared with the pool)"
)]
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        configured
    }
}

/// Runs `f(0..count)` on at most `threads` workers (`0` = one per core) and
/// returns the results indexed by input. Worker scheduling is dynamic (an
/// atomic cursor), results are position-stable, so the output never depends
/// on thread interleaving.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins every worker).
#[deprecated(
    since = "0.1.0",
    note = "use `mcsched_runtime::run_indexed` (persistent work-stealing pool, nested fan-outs)"
)]
#[allow(deprecated)]
pub fn run_indexed<T, F>(threads: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_threads(threads).clamp(1, count.max(1));
    if workers <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }

    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = f(i);
                    slots.lock()[i] = Some(result);
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("fan-out worker panicked");
        }
    });
    slots
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn results_are_in_input_order() {
        let out = run_indexed(4, 32, |i| i * 2);
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_work_is_fine() {
        let out: Vec<usize> = run_indexed(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_runs_strictly_sequentially() {
        let inside = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        run_indexed(1, 16, |i| {
            let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
            max_seen.fetch_max(now, Ordering::SeqCst);
            inside.fetch_sub(1, Ordering::SeqCst);
            i
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn thread_count_actually_provides_parallelism() {
        // Four tasks blocked on a barrier of four can only complete if four
        // workers run them concurrently; with fewer workers this would
        // deadlock (and the test would time out).
        let barrier = Barrier::new(4);
        let out = run_indexed(4, 4, |i| {
            barrier.wait();
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn worker_count_never_exceeds_configuration() {
        let inside = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        run_indexed(2, 64, |i| {
            let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
            max_seen.fetch_max(now, Ordering::SeqCst);
            std::thread::yield_now();
            inside.fetch_sub(1, Ordering::SeqCst);
            i
        });
        assert!(max_seen.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn zero_resolves_to_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
