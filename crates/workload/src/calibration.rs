//! Width-distribution calibration of the random-DAG generators.
//!
//! The ROADMAP fidelity item observed that the WPS-vs-PS unfairness ordering
//! of the paper's Figure 3 does not reproduce with the legacy
//! [`mcsched_ptg::gen::random`] generator and suspected its width
//! distribution. This module quantifies that suspicion: it samples DAGs from
//! a generator and reports statistics of the realized maximal width, level
//! count and edge count, and compares the legacy generator, the DAGGEN-style
//! [`crate::daggen`] generator and the paper's nominal mean width
//! (`fat · √n`) side by side.

use crate::daggen::{daggen_ptg, DaggenConfig};
use mcsched_ptg::analysis::structure;
use mcsched_ptg::gen::{random_ptg, RandomPtgConfig};
use mcsched_ptg::Ptg;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Summary statistics of the realized graph shapes over a sample of DAGs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct WidthReport {
    /// Number of sampled graphs.
    pub samples: usize,
    /// Mean of the maximal precedence-level width.
    pub mean_max_width: f64,
    /// Standard deviation of the maximal width.
    pub std_max_width: f64,
    /// Smallest observed maximal width.
    pub min_max_width: usize,
    /// Largest observed maximal width.
    pub max_max_width: usize,
    /// Mean number of precedence levels.
    pub mean_levels: f64,
    /// Mean number of edges.
    pub mean_edges: f64,
}

impl std::fmt::Display for WidthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "width {:.2} ± {:.2} (range {}..={}), {:.1} levels, {:.1} edges over {} samples",
            self.mean_max_width,
            self.std_max_width,
            self.min_max_width,
            self.max_max_width,
            self.mean_levels,
            self.mean_edges,
            self.samples
        )
    }
}

/// Samples `samples` graphs from `generate` (called with seeds
/// `base_seed..base_seed + samples`) and reports their shape statistics.
///
/// # Panics
///
/// Panics when `samples` is zero.
pub fn width_report<F: FnMut(u64) -> Ptg>(
    samples: usize,
    base_seed: u64,
    mut generate: F,
) -> WidthReport {
    assert!(samples > 0, "a width report needs at least one sample");
    let mut widths: Vec<f64> = Vec::with_capacity(samples);
    let mut min_w = usize::MAX;
    let mut max_w = 0usize;
    let mut levels_sum = 0.0f64;
    let mut edges_sum = 0.0f64;
    for i in 0..samples {
        let g = generate(base_seed.wrapping_add(i as u64));
        let s = structure(&g);
        let w = s.max_width();
        widths.push(w as f64);
        min_w = min_w.min(w);
        max_w = max_w.max(w);
        levels_sum += s.num_levels() as f64;
        edges_sum += g.num_edges() as f64;
    }
    let n = samples as f64;
    let mean = widths.iter().sum::<f64>() / n;
    let var = widths.iter().map(|w| (w - mean).powi(2)).sum::<f64>() / n;
    WidthReport {
        samples,
        mean_max_width: mean,
        std_max_width: var.sqrt(),
        min_max_width: min_w,
        max_max_width: max_w,
        mean_levels: levels_sum / n,
        mean_edges: edges_sum / n,
    }
}

/// Width statistics of the DAGGEN-style generator for one configuration.
#[must_use]
pub fn daggen_width_report(cfg: &DaggenConfig, samples: usize, base_seed: u64) -> WidthReport {
    width_report(samples, base_seed, |seed| {
        daggen_ptg(cfg, &mut ChaCha8Rng::seed_from_u64(seed), "cal")
    })
}

/// Width statistics of the legacy `mcsched_ptg::gen::random` generator for
/// one configuration.
#[must_use]
pub fn legacy_width_report(cfg: &RandomPtgConfig, samples: usize, base_seed: u64) -> WidthReport {
    width_report(samples, base_seed, |seed| {
        random_ptg(cfg, &mut ChaCha8Rng::seed_from_u64(seed), "cal")
    })
}

/// Side-by-side comparison of both generators for one (size, width) cell of
/// the paper's grid.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct WidthComparison {
    /// Number of tasks `n`.
    pub num_tasks: usize,
    /// The paper's width parameter (DAGGEN `fat`).
    pub width: f64,
    /// The paper generator's nominal mean level width, `fat · √n`.
    pub paper_mean_width: f64,
    /// The legacy generator's nominal mean level width, `n^width`.
    pub legacy_mean_width: f64,
    /// Realized statistics of the DAGGEN-style generator.
    pub daggen: WidthReport,
    /// Realized statistics of the legacy generator.
    pub legacy: WidthReport,
}

/// Compares the two generators over the paper's (size, width) grid at
/// mid-range regularity/density/jump, `samples` graphs per cell.
#[must_use]
pub fn compare_paper_widths(samples: usize, base_seed: u64) -> Vec<WidthComparison> {
    let mut rows = Vec::new();
    for &num_tasks in &[10usize, 20, 50] {
        for &width in &[0.2, 0.5, 0.8] {
            let dag_cfg = DaggenConfig::from_paper(num_tasks, width, 0.8, 0.5, 1);
            let legacy_cfg = RandomPtgConfig {
                num_tasks,
                width,
                ..RandomPtgConfig::default_config()
            };
            rows.push(WidthComparison {
                num_tasks,
                width,
                paper_mean_width: dag_cfg.mean_width(),
                legacy_mean_width: (num_tasks as f64).powf(width),
                daggen: daggen_width_report(&dag_cfg, samples, base_seed),
                legacy: legacy_width_report(&legacy_cfg, samples, base_seed),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_statistics_are_consistent() {
        let cfg = DaggenConfig::new(20);
        let r = daggen_width_report(&cfg, 32, 7);
        assert_eq!(r.samples, 32);
        assert!(r.min_max_width as f64 <= r.mean_max_width);
        assert!(r.mean_max_width <= r.max_max_width as f64);
        assert!(r.std_max_width >= 0.0);
        assert!(r.mean_levels >= 1.0);
        assert!(r.mean_edges >= 0.0);
        let rendered = r.to_string();
        assert!(rendered.contains("samples"));
    }

    #[test]
    fn reports_are_deterministic_per_seed() {
        let cfg = DaggenConfig::new(20);
        assert_eq!(
            daggen_width_report(&cfg, 8, 3),
            daggen_width_report(&cfg, 8, 3)
        );
    }

    #[test]
    fn daggen_tracks_the_paper_mean_and_legacy_overshoots_it() {
        // The quantified fidelity gap behind the ROADMAP item: at n = 50 the
        // legacy generator's realized widths sit far above fat·√n, the
        // DAGGEN generator's close to it.
        let rows = compare_paper_widths(48, 11);
        let row = rows
            .iter()
            .find(|r| r.num_tasks == 50 && (r.width - 0.8).abs() < 1e-9)
            .unwrap();
        assert!(
            (row.daggen.mean_max_width - row.paper_mean_width).abs()
                < (row.legacy.mean_max_width - row.paper_mean_width).abs(),
            "daggen ({:.1}) should be closer to the paper mean ({:.1}) than legacy ({:.1})",
            row.daggen.mean_max_width,
            row.paper_mean_width,
            row.legacy.mean_max_width
        );
        assert!(
            row.legacy.mean_max_width > 2.0 * row.paper_mean_width,
            "legacy widths ({:.1}) dwarf the paper mean ({:.1})",
            row.legacy.mean_max_width,
            row.paper_mean_width
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panic() {
        let cfg = DaggenConfig::new(10);
        let _ = daggen_width_report(&cfg, 0, 0);
    }
}
