//! DAGGEN-style random-DAG generator.
//!
//! Reproduces the parameterisation of the DAG generation program used by the
//! paper's authors (DAGGEN): tasks are spread over precedence levels whose
//! *mean* size is `fat · √n`, and every task draws its parents from a window
//! of preceding levels. This differs from the legacy
//! [`mcsched_ptg::gen::random`] generator, whose mean level width is
//! `n^width` — much wider for the paper's parameter values (see the crate
//! docs and [`crate::calibration`] for the quantified gap).
//!
//! Algorithm, for a configuration `cfg` and a seeded RNG:
//!
//! 1. **Levels** — while tasks remain, draw the next level size uniformly in
//!    `[regularity · w̄, (2 − regularity) · w̄]` (integer, clamped to the
//!    remaining task budget), where `w̄ = max(1, fat · √n)`;
//! 2. **Tasks** — every task draws its dataset size `d` uniformly in the
//!    paper's `[4·10⁶, 121·10⁶]` range, its Amdahl fraction in `[0, 0.25]`
//!    and its complexity from the configured [`CostScenario`];
//! 3. **Edges** — every non-entry task receives one mandatory parent from
//!    the immediately preceding level (keeping the generated level structure
//!    intact) plus up to `⌊density · (window − 1)⌋` additional distinct
//!    parents drawn from the `jump` preceding levels;
//! 4. **Communication** — each edge carries `ccr · 8 · d_src` bytes
//!    (`ccr = 1` reproduces the paper's `8·d` data volumes).

use mcsched_core::SchedError;
use mcsched_ptg::gen::CostScenario;
use mcsched_ptg::{Ptg, PtgBuilder, TaskId};
use rand::Rng;

/// Configuration of the DAGGEN-style generator. See the [module
/// docs](self) for the generation algorithm and the crate docs for the
/// mapping to the paper's parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaggenConfig {
    /// Number of data-parallel tasks `n` (the paper uses 10, 20 and 50).
    pub num_tasks: usize,
    /// Width of the DAG: the mean number of tasks per precedence level is
    /// `fat · √n`. The paper's *width* values {0.2, 0.5, 0.8} are `fat`
    /// values in this parameterisation.
    pub fat: f64,
    /// Regularity of the level-size distribution, in `[0, 1]` (1 = all
    /// levels have the mean size).
    pub regularity: f64,
    /// Density of inter-level dependencies, in `[0, 1]`: each task draws up
    /// to `⌊density · (window − 1)⌋` parents beyond the mandatory one.
    pub density: f64,
    /// Number of preceding levels a dependency may span (1 = consecutive
    /// levels only; the paper uses 1, 2 and 4).
    pub jump: usize,
    /// Communication scaling: edge volumes are `ccr · 8 · d` bytes. `1.0`
    /// reproduces the paper's data volumes.
    pub ccr: f64,
    /// Computational complexity scenario of the tasks.
    pub cost_scenario: CostScenario,
}

impl DaggenConfig {
    /// A mid-range default configuration: 20 tasks, fat 0.5, regularity 0.8,
    /// density 0.5, jump 1, the paper's communication volumes and mixed
    /// costs.
    #[must_use]
    pub fn new(num_tasks: usize) -> Self {
        Self {
            num_tasks,
            fat: 0.5,
            regularity: 0.8,
            density: 0.5,
            jump: 1,
            ccr: 1.0,
            cost_scenario: CostScenario::Mixed,
        }
    }

    /// Builds a configuration from the paper's parameter names: the paper's
    /// *width* is DAGGEN's `fat` (mean level width `fat · √n`).
    #[must_use]
    pub fn from_paper(
        num_tasks: usize,
        width: f64,
        regularity: f64,
        density: f64,
        jump: usize,
    ) -> Self {
        Self {
            num_tasks,
            fat: width,
            regularity,
            density,
            jump,
            ..Self::new(num_tasks)
        }
    }

    /// The mean number of tasks per precedence level, `max(1, fat · √n)`.
    #[must_use]
    pub fn mean_width(&self) -> f64 {
        (self.fat * (self.num_tasks as f64).sqrt()).max(1.0)
    }

    /// The full parameter grid of the paper's evaluation, expressed for this
    /// generator: sizes {10, 20, 50} × fat {0.2, 0.5, 0.8} × regularity
    /// {0.2, 0.8} × density {0.2, 0.8} × jump {1, 2, 4}, mixed costs.
    #[must_use]
    pub fn paper_grid() -> Vec<Self> {
        let mut grid = Vec::new();
        for &num_tasks in &[10usize, 20, 50] {
            for &fat in &[0.2, 0.5, 0.8] {
                for &regularity in &[0.2, 0.8] {
                    for &density in &[0.2, 0.8] {
                        for &jump in &[1usize, 2, 4] {
                            grid.push(Self::from_paper(num_tasks, fat, regularity, density, jump));
                        }
                    }
                }
            }
        }
        grid
    }

    /// Draws one configuration uniformly from [`DaggenConfig::paper_grid`]
    /// with the cost scenario also drawn uniformly, mirroring
    /// `RandomPtgConfig::sample_paper_grid` for the calibrated generator.
    pub fn sample_paper_grid<R: Rng>(rng: &mut R) -> Self {
        let num_tasks = [10usize, 20, 50][rng.gen_range(0..3)];
        let fat = [0.2, 0.5, 0.8][rng.gen_range(0..3)];
        let regularity = [0.2, 0.8][rng.gen_range(0..2)];
        let density = [0.2, 0.8][rng.gen_range(0..2)];
        let jump = [1usize, 2, 4][rng.gen_range(0..3)];
        let cost_scenario = CostScenario::all()[rng.gen_range(0..4)];
        Self {
            num_tasks,
            fat,
            regularity,
            density,
            jump,
            ccr: 1.0,
            cost_scenario,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] when a parameter is outside its domain.
    pub fn validate(&self) -> Result<(), SchedError> {
        let err = |what: String| Err(SchedError::InvalidConfig(what));
        if self.num_tasks == 0 {
            return err("daggen: a PTG needs at least one task".into());
        }
        if !(self.fat > 0.0 && self.fat.is_finite()) {
            return err(format!("daggen: fat {} must be finite and > 0", self.fat));
        }
        if !(0.0..=1.0).contains(&self.regularity) {
            return err(format!(
                "daggen: regularity {} outside [0, 1]",
                self.regularity
            ));
        }
        if !(0.0..=1.0).contains(&self.density) {
            return err(format!("daggen: density {} outside [0, 1]", self.density));
        }
        if self.jump == 0 {
            return err("daggen: jump must be at least 1".into());
        }
        if !(self.ccr > 0.0 && self.ccr.is_finite()) {
            return err(format!("daggen: ccr {} must be finite and > 0", self.ccr));
        }
        Ok(())
    }
}

/// Generates one random PTG with the DAGGEN parameterisation. The result is
/// a valid DAG in which every non-entry task has a parent in the immediately
/// preceding level (so the generated level structure is exactly the
/// precedence-level structure).
///
/// # Panics
///
/// Panics when `cfg` fails [`DaggenConfig::validate`]; the catalog and the
/// workload sources validate before generating.
pub fn daggen_ptg<R: Rng>(cfg: &DaggenConfig, rng: &mut R, name: impl Into<String>) -> Ptg {
    cfg.validate().expect("daggen configuration must be valid");

    // 1. Level sizes: uniform integers around the DAGGEN mean width.
    let n = cfg.num_tasks;
    let mean = cfg.mean_width();
    let lo = (cfg.regularity * mean).max(1.0).round() as usize;
    let hi = ((2.0 - cfg.regularity) * mean).round().max(lo as f64) as usize;
    let mut level_sizes: Vec<usize> = Vec::new();
    let mut assigned = 0usize;
    while assigned < n {
        let size = rng.gen_range(lo..=hi).clamp(1, n - assigned);
        level_sizes.push(size);
        assigned += size;
    }

    // 2. Tasks, level by level, with the paper's cost model.
    let mut builder = PtgBuilder::new(name);
    let mut levels: Vec<Vec<TaskId>> = Vec::with_capacity(level_sizes.len());
    for (lvl, &size) in level_sizes.iter().enumerate() {
        let mut ids = Vec::with_capacity(size);
        for i in 0..size {
            let d = rng.gen_range(mcsched_ptg::MIN_DATA_ELEMS..=mcsched_ptg::MAX_DATA_ELEMS);
            let alpha = rng.gen_range(0.0..=0.25);
            let model = cfg.cost_scenario.draw_model(rng);
            let task = mcsched_ptg::DataParallelTask::new(format!("t{lvl}_{i}"), d, model, alpha);
            ids.push(builder.add_task(task));
        }
        levels.push(ids);
    }

    // 3. Parents: one mandatory from level l-1, extras from the jump window.
    for l in 1..levels.len() {
        let window_start = l.saturating_sub(cfg.jump);
        let window: Vec<TaskId> = levels[window_start..l].iter().flatten().copied().collect();
        let prev = levels[l - 1].clone();
        let cur = levels[l].clone();
        let max_extra = (cfg.density * (window.len().saturating_sub(1)) as f64).floor() as usize;
        for &dst in &cur {
            let mandatory = prev[rng.gen_range(0..prev.len())];
            let mut parents = vec![mandatory];
            let extra = if max_extra > 0 {
                rng.gen_range(0..=max_extra)
            } else {
                0
            };
            // Partial Fisher-Yates over the window to draw distinct parents.
            let mut pool = window.clone();
            for slot in 0..pool.len() {
                if parents.len() > extra {
                    break;
                }
                let pick = rng.gen_range(slot..pool.len());
                pool.swap(slot, pick);
                let candidate = pool[slot];
                if candidate != mandatory {
                    parents.push(candidate);
                }
            }
            for src in parents {
                let bytes = builder.tasks_slice()[src].output_bytes() * cfg.ccr;
                builder.add_edge(src, dst, bytes);
            }
        }
    }

    builder
        .build()
        .expect("daggen produces valid acyclic graphs by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsched_ptg::analysis::structure;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn respects_task_count() {
        for &n in &[1usize, 10, 20, 50] {
            let g = daggen_ptg(&DaggenConfig::new(n), &mut rng(n as u64), "g");
            assert_eq!(g.num_tasks(), n);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = DaggenConfig::from_paper(50, 0.5, 0.2, 0.8, 2);
        assert_eq!(
            daggen_ptg(&cfg, &mut rng(9), "g"),
            daggen_ptg(&cfg, &mut rng(9), "g")
        );
    }

    #[test]
    fn every_non_entry_task_has_a_parent_in_the_previous_level() {
        let cfg = DaggenConfig::from_paper(50, 0.8, 0.2, 0.8, 4);
        let g = daggen_ptg(&cfg, &mut rng(3), "g");
        let s = structure(&g);
        for t in g.task_ids() {
            let lvl = s.levels[t];
            if lvl > 0 {
                assert!(
                    g.preds(t).iter().any(|&(p, _)| s.levels[p] == lvl - 1),
                    "task {t} at level {lvl} has no parent at level {}",
                    lvl - 1
                );
            }
        }
    }

    #[test]
    fn mean_width_tracks_fat_sqrt_n() {
        // fat = 0.8, n = 50 → mean width ≈ 5.7, far below the legacy
        // generator's n^0.8 ≈ 22.9. Average the realized max width over a
        // few seeds and check it lands near the DAGGEN mean, not the legacy
        // one.
        let cfg = DaggenConfig::from_paper(50, 0.8, 0.8, 0.5, 1);
        let avg: f64 = (0..16)
            .map(|s| structure(&daggen_ptg(&cfg, &mut rng(s), "g")).max_width() as f64)
            .sum::<f64>()
            / 16.0;
        assert!(
            avg < 12.0,
            "realized width {avg:.1} should be near fat·√n ≈ 5.7, not n^0.8 ≈ 22.9"
        );
        assert!(avg > 2.0, "realized width {avg:.1} suspiciously thin");
    }

    #[test]
    fn wider_fat_yields_wider_graphs() {
        let narrow = DaggenConfig::from_paper(50, 0.2, 0.8, 0.5, 1);
        let wide = DaggenConfig::from_paper(50, 0.8, 0.8, 0.5, 1);
        let avg = |cfg: &DaggenConfig| -> f64 {
            (0..8)
                .map(|s| structure(&daggen_ptg(cfg, &mut rng(s), "g")).max_width() as f64)
                .sum::<f64>()
                / 8.0
        };
        assert!(avg(&wide) > avg(&narrow));
    }

    #[test]
    fn denser_config_has_more_edges() {
        let sparse = DaggenConfig {
            density: 0.2,
            ..DaggenConfig::new(50)
        };
        let dense = DaggenConfig {
            density: 0.8,
            ..DaggenConfig::new(50)
        };
        let avg = |cfg: &DaggenConfig| -> f64 {
            (0..8)
                .map(|s| daggen_ptg(cfg, &mut rng(100 + s), "g").num_edges() as f64)
                .sum::<f64>()
                / 8.0
        };
        assert!(avg(&dense) > avg(&sparse));
    }

    #[test]
    fn jump_edges_stay_within_the_window_and_acyclic() {
        let cfg = DaggenConfig::from_paper(50, 0.8, 0.2, 0.8, 4);
        let g = daggen_ptg(&cfg, &mut rng(77), "g");
        let s = structure(&g);
        for e in g.edges() {
            assert!(s.levels[e.src] < s.levels[e.dst]);
            assert!(s.levels[e.dst] - s.levels[e.src] <= 4);
        }
    }

    #[test]
    fn ccr_scales_edge_volumes() {
        let base = DaggenConfig::new(20);
        let scaled = DaggenConfig { ccr: 2.5, ..base };
        let g1 = daggen_ptg(&base, &mut rng(5), "g");
        let g2 = daggen_ptg(&scaled, &mut rng(5), "g");
        assert!((g2.total_communication() - 2.5 * g1.total_communication()).abs() < 1e-3);
    }

    #[test]
    fn costs_follow_the_paper_ranges() {
        let g = daggen_ptg(&DaggenConfig::new(50), &mut rng(5), "g");
        for t in g.tasks() {
            assert!(t.data_elems() >= mcsched_ptg::MIN_DATA_ELEMS);
            assert!(t.data_elems() <= mcsched_ptg::MAX_DATA_ELEMS);
            assert!(t.alpha() >= 0.0 && t.alpha() <= 0.25);
            assert!(t.flops() > 0.0);
        }
    }

    #[test]
    fn paper_grid_has_expected_cardinality() {
        assert_eq!(DaggenConfig::paper_grid().len(), 108);
        for cfg in DaggenConfig::paper_grid() {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let bad = |f: fn(&mut DaggenConfig)| {
            let mut cfg = DaggenConfig::new(10);
            f(&mut cfg);
            assert!(matches!(cfg.validate(), Err(SchedError::InvalidConfig(_))));
        };
        bad(|c| c.num_tasks = 0);
        bad(|c| c.fat = 0.0);
        bad(|c| c.fat = f64::NAN);
        bad(|c| c.regularity = 1.5);
        bad(|c| c.density = -0.1);
        bad(|c| c.jump = 0);
        bad(|c| c.ccr = 0.0);
    }
}
