//! Name-resolvable catalog of workload sources, mirroring the scheduler's
//! `PolicyRegistry`.
//!
//! ## Spec grammar
//!
//! ```text
//! spec      := sources [ "/" arrival ]         e.g.  daggen@n=50,width=0.5/poisson@lambda=0.1
//! sources   := generator { "+" generator }     e.g.  random+fft@points=8
//! generator := name [ "@" params ]             e.g.  daggen@n=50,width=0.5
//! arrival   := name [ "@" params ]             e.g.  poisson@lambda=0.1
//! params    := key "=" value { "," key "=" value }
//! ```
//!
//! Built-in generator names: `random` (legacy paper-grid sampler), `daggen`
//! (DAGGEN-style, parameters `n`, `width`/`fat`, `regularity`, `density`,
//! `jump`, `ccr`, `costs`), `daggen-grid` (DAGGEN-style with a fresh
//! paper-grid configuration per application — the calibrated counterpart of
//! `random`), `fft` (`points`), `strassen`. Built-in arrival
//! names: `batch`, `poisson` (`lambda`), `uniform` (`lo`, `hi`), `bursty`
//! (`burst`, `gap`). A bare arrival spec such as `poisson@lambda=0.1`
//! resolves to the default `random` source with that arrival, so the catalog
//! answers both of the ISSUE's example names. Names are case-insensitive;
//! user sources register with [`WorkloadCatalog::register`].

use crate::arrival::ArrivalProcess;
use crate::daggen::DaggenConfig;
use crate::source::{AppGenerator, GeneratorSource, WorkloadSource};
use mcsched_core::{PolicyKind, SchedError};
use mcsched_ptg::gen::CostScenario;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Factory of a user-registered source: receives the parameter fragment
/// (everything after `@`, possibly empty) and the arrival process of the
/// spec.
pub type SourceFactory =
    Arc<dyn Fn(&str, ArrivalProcess) -> Result<Arc<dyn WorkloadSource>, SchedError> + Send + Sync>;

/// A registry resolving workload spec strings to [`WorkloadSource`]s.
#[derive(Clone, Default)]
pub struct WorkloadCatalog {
    custom: BTreeMap<String, SourceFactory>,
}

impl std::fmt::Debug for WorkloadCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadCatalog")
            .field("sources", &self.source_names())
            .field("arrivals", &Self::arrival_names())
            .finish()
    }
}

impl WorkloadCatalog {
    /// The catalog with the built-in generators and arrival processes.
    #[must_use]
    pub fn builtin() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a custom source under `name`
    /// (case-insensitive). Custom names shadow built-ins and cannot
    /// participate in `+` mixtures.
    pub fn register(&mut self, name: impl Into<String>, factory: SourceFactory) {
        self.custom.insert(name.into().to_lowercase(), factory);
    }

    /// The resolvable source names: built-in generators, arrival shortcuts
    /// and custom registrations.
    #[must_use]
    pub fn source_names(&self) -> Vec<String> {
        let mut names: Vec<String> = ["random", "daggen", "daggen-grid", "fft", "strassen"]
            .iter()
            .map(ToString::to_string)
            .collect();
        names.extend(Self::arrival_names());
        names.extend(self.custom.keys().cloned());
        names.sort();
        names.dedup();
        names
    }

    /// The built-in arrival-process names.
    #[must_use]
    pub fn arrival_names() -> Vec<String> {
        ["batch", "poisson", "uniform", "bursty"]
            .iter()
            .map(ToString::to_string)
            .collect()
    }

    /// Resolves a spec string (see the [module docs](self) for the grammar).
    ///
    /// # Errors
    ///
    /// [`SchedError::UnknownPolicy`] for unknown names,
    /// [`SchedError::InvalidConfig`] for malformed parameters.
    pub fn resolve(&self, spec: &str) -> Result<Arc<dyn WorkloadSource>, SchedError> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err(SchedError::InvalidConfig("empty workload spec".to_string()));
        }
        let (source_part, arrival_part) = match spec.split_once('/') {
            Some((s, a)) => (s.trim(), Some(a.trim())),
            None => (spec, None),
        };
        let arrival = match arrival_part {
            Some(a) => parse_arrival(a)?,
            None => ArrivalProcess::Batch,
        };

        if !source_part.contains('+') {
            let head = head_of(source_part);
            // Custom sources shadow built-ins — including the bare-arrival
            // shortcut names below (single-generator specs only).
            if let Some(factory) = self.custom.get(&head) {
                arrival.validate()?;
                let params = source_part.split_once('@').map_or("", |(_, params)| params);
                return factory(params, arrival);
            }
            // A bare arrival spec (`poisson@lambda=0.1`) selects the default
            // random source with that arrival.
            if arrival_part.is_none() && Self::arrival_names().contains(&head) {
                let arrival = parse_arrival(source_part)?;
                arrival.validate()?;
                return Ok(Arc::new(
                    GeneratorSource::new(AppGenerator::Random).with_arrival(arrival),
                ));
            }
        }
        arrival.validate()?;

        let generators = source_part
            .split('+')
            .map(|fragment| self.parse_generator(fragment.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Arc::new(
            GeneratorSource::mixed(generators)?.with_arrival(arrival),
        ))
    }

    fn parse_generator(&self, fragment: &str) -> Result<AppGenerator, SchedError> {
        let (name, _) = split_name(fragment);
        let params = Params::parse(&params_str(fragment))?;
        let generator = match name.as_str() {
            "random" => {
                params.expect_keys(&[])?;
                AppGenerator::Random
            }
            "strassen" => {
                params.expect_keys(&[])?;
                AppGenerator::Strassen
            }
            "daggen-grid" => {
                params.expect_keys(&[])?;
                AppGenerator::DaggenGrid
            }
            "fft" => {
                params.expect_keys(&["points"])?;
                AppGenerator::Fft {
                    points: params.get_usize("points")?,
                }
            }
            "daggen" => {
                params.expect_keys(&[
                    "n",
                    "width",
                    "fat",
                    "regularity",
                    "density",
                    "jump",
                    "ccr",
                    "costs",
                ])?;
                let mut cfg = DaggenConfig::new(params.get_usize("n")?.unwrap_or(20));
                // `width` is the paper's name for DAGGEN's `fat`.
                if let Some(fat) = params.get_f64("width")?.or(params.get_f64("fat")?) {
                    cfg.fat = fat;
                }
                if let Some(v) = params.get_f64("regularity")? {
                    cfg.regularity = v;
                }
                if let Some(v) = params.get_f64("density")? {
                    cfg.density = v;
                }
                if let Some(v) = params.get_usize("jump")? {
                    cfg.jump = v;
                }
                if let Some(v) = params.get_f64("ccr")? {
                    cfg.ccr = v;
                }
                if let Some(costs) = params.get_str("costs") {
                    cfg.cost_scenario = match costs {
                        "linear" => CostScenario::Linear,
                        "loglinear" => CostScenario::LogLinear,
                        "matrix" => CostScenario::MatrixProduct,
                        "mixed" => CostScenario::Mixed,
                        other => {
                            return Err(SchedError::InvalidConfig(format!(
                                "daggen: unknown cost scenario `{other}` \
                                 (expected linear, loglinear, matrix or mixed)"
                            )))
                        }
                    };
                }
                AppGenerator::Daggen(cfg)
            }
            _ => {
                return Err(SchedError::UnknownPolicy {
                    kind: PolicyKind::WorkloadSource,
                    name: name.clone(),
                    known: self.source_names(),
                })
            }
        };
        generator.validate()?;
        Ok(generator)
    }
}

fn head_of(fragment: &str) -> String {
    split_name(fragment).0
}

fn split_name(fragment: &str) -> (String, Option<String>) {
    match fragment.split_once('@') {
        Some((name, params)) => (name.trim().to_lowercase(), Some(params.to_string())),
        None => (fragment.trim().to_lowercase(), None),
    }
}

fn params_str(fragment: &str) -> String {
    fragment
        .split_once('@')
        .map_or(String::new(), |(_, p)| p.to_string())
}

fn parse_arrival(fragment: &str) -> Result<ArrivalProcess, SchedError> {
    let (name, _) = split_name(fragment);
    let params = Params::parse(&params_str(fragment))?;
    let arrival = match name.as_str() {
        "batch" => {
            params.expect_keys(&[])?;
            ArrivalProcess::Batch
        }
        "poisson" => {
            params.expect_keys(&["lambda"])?;
            ArrivalProcess::Poisson {
                lambda: params.get_f64("lambda")?.unwrap_or(0.01),
            }
        }
        "uniform" => {
            params.expect_keys(&["lo", "hi"])?;
            ArrivalProcess::Uniform {
                lo: params.get_f64("lo")?.unwrap_or(0.0),
                hi: params.get_f64("hi")?.unwrap_or(100.0),
            }
        }
        "bursty" => {
            params.expect_keys(&["burst", "gap"])?;
            ArrivalProcess::Bursty {
                burst: params.get_usize("burst")?.unwrap_or(2),
                gap: params.get_f64("gap")?.unwrap_or(100.0),
            }
        }
        _ => {
            return Err(SchedError::UnknownPolicy {
                kind: PolicyKind::WorkloadSource,
                name,
                known: WorkloadCatalog::arrival_names(),
            })
        }
    };
    arrival.validate()?;
    Ok(arrival)
}

/// Parsed `key=value` parameter list.
struct Params {
    entries: Vec<(String, String)>,
}

impl Params {
    fn parse(text: &str) -> Result<Self, SchedError> {
        let mut entries = Vec::new();
        for item in text.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = item.split_once('=').ok_or_else(|| {
                SchedError::InvalidConfig(format!(
                    "malformed parameter `{item}` (expected key=value)"
                ))
            })?;
            entries.push((key.trim().to_lowercase(), value.trim().to_string()));
        }
        Ok(Self { entries })
    }

    fn expect_keys(&self, allowed: &[&str]) -> Result<(), SchedError> {
        for (key, _) in &self.entries {
            if !allowed.contains(&key.as_str()) {
                return Err(SchedError::InvalidConfig(format!(
                    "unknown parameter `{key}` (expected one of: {})",
                    if allowed.is_empty() {
                        "none".to_string()
                    } else {
                        allowed.join(", ")
                    }
                )));
            }
        }
        Ok(())
    }

    fn get_str(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_f64(&self, key: &str) -> Result<Option<f64>, SchedError> {
        self.get_str(key)
            .map(|v| {
                v.parse::<f64>().map_err(|_| {
                    SchedError::InvalidConfig(format!("parameter `{key}={v}` is not a number"))
                })
            })
            .transpose()
    }

    fn get_usize(&self, key: &str) -> Result<Option<usize>, SchedError> {
        self.get_str(key)
            .map(|v| {
                v.parse::<usize>().map_err(|_| {
                    SchedError::InvalidConfig(format!("parameter `{key}={v}` is not an integer"))
                })
            })
            .transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::WorkloadRequest;

    #[test]
    fn resolves_the_issue_example_specs() {
        let catalog = WorkloadCatalog::builtin();
        let daggen = catalog.resolve("daggen@n=50,width=0.5").unwrap();
        assert_eq!(daggen.short_label(), "daggen");
        let w = daggen.generate(&WorkloadRequest::new(1, 2, "d")).unwrap();
        assert_eq!(w.ptgs()[0].num_tasks(), 50);

        let poisson = catalog.resolve("poisson@lambda=0.1").unwrap();
        let w = poisson.generate(&WorkloadRequest::new(1, 3, "p")).unwrap();
        assert!(!w.is_batch());
        assert_eq!(poisson.short_label(), "random");
    }

    #[test]
    fn resolves_mixtures_and_arrival_suffixes() {
        let catalog = WorkloadCatalog::builtin();
        let source = catalog
            .resolve("strassen+fft@points=4/bursty@burst=2,gap=10")
            .unwrap();
        let w = source.generate(&WorkloadRequest::new(3, 4, "m")).unwrap();
        assert_eq!(w.ptgs()[0].num_tasks(), 25);
        assert_eq!(w.ptgs()[1].num_tasks(), 15);
        assert_eq!(w.release_times(), &[0.0, 0.0, 10.0, 10.0]);
    }

    #[test]
    fn canonical_specs_round_trip_through_the_catalog() {
        let catalog = WorkloadCatalog::builtin();
        for spec in [
            "random",
            "strassen",
            "fft@points=8",
            "daggen@n=10,width=0.2,regularity=0.2,density=0.8,jump=2,ccr=1,costs=mixed",
            "random+fft@points=8/poisson@lambda=0.5",
        ] {
            let source = catalog.resolve(spec).unwrap();
            let canonical = source.spec();
            let again = catalog.resolve(&canonical).unwrap();
            assert_eq!(again.spec(), canonical, "spec `{spec}`");
        }
    }

    #[test]
    fn unknown_names_report_the_known_catalog() {
        let catalog = WorkloadCatalog::builtin();
        match catalog.resolve("bogus@x=1") {
            Err(SchedError::UnknownPolicy { kind, name, known }) => {
                assert_eq!(kind, PolicyKind::WorkloadSource);
                assert_eq!(name, "bogus");
                assert!(known.contains(&"daggen".to_string()));
            }
            other => panic!("expected UnknownPolicy, got {other:?}"),
        }
    }

    #[test]
    fn malformed_parameters_are_rejected() {
        let catalog = WorkloadCatalog::builtin();
        assert!(matches!(
            catalog.resolve("daggen@n"),
            Err(SchedError::InvalidConfig(_))
        ));
        assert!(matches!(
            catalog.resolve("daggen@n=abc"),
            Err(SchedError::InvalidConfig(_))
        ));
        assert!(matches!(
            catalog.resolve("daggen@bogus=1"),
            Err(SchedError::InvalidConfig(_))
        ));
        assert!(matches!(
            catalog.resolve("fft@points=5"),
            Err(SchedError::InvalidConfig(_))
        ));
        assert!(matches!(
            catalog.resolve("poisson@lambda=-1"),
            Err(SchedError::InvalidConfig(_))
        ));
        assert!(matches!(
            catalog.resolve(""),
            Err(SchedError::InvalidConfig(_))
        ));
        assert!(matches!(
            catalog.resolve("random/never@x=1"),
            Err(SchedError::UnknownPolicy { .. })
        ));
    }

    #[test]
    fn case_insensitive_names() {
        let catalog = WorkloadCatalog::builtin();
        assert!(catalog.resolve("DAGGEN@N=10").is_ok());
        assert!(catalog.resolve("Random").is_ok());
    }

    #[test]
    fn custom_sources_register_and_shadow() {
        let mut catalog = WorkloadCatalog::builtin();
        catalog.register(
            "fixture",
            Arc::new(|params, arrival| {
                assert_eq!(params, "k=1");
                Ok(Arc::new(
                    GeneratorSource::new(AppGenerator::Strassen).with_arrival(arrival),
                ))
            }),
        );
        assert!(catalog.source_names().contains(&"fixture".to_string()));
        let source = catalog.resolve("fixture@k=1/poisson@lambda=1").unwrap();
        let w = source.generate(&WorkloadRequest::new(2, 2, "f")).unwrap();
        assert_eq!(w.ptgs()[0].num_tasks(), 25);
        assert!(!w.is_batch());
    }

    #[test]
    fn custom_sources_shadow_arrival_shortcut_names() {
        // A registration under an arrival name must win over the bare-arrival
        // shortcut, or the user's workload would silently be replaced by the
        // default random source.
        let mut catalog = WorkloadCatalog::builtin();
        catalog.register(
            "poisson",
            Arc::new(|params, arrival| {
                assert_eq!(params, "lambda=5");
                assert_eq!(arrival, ArrivalProcess::Batch);
                Ok(Arc::new(GeneratorSource::new(AppGenerator::Strassen)))
            }),
        );
        let source = catalog.resolve("poisson@lambda=5").unwrap();
        let w = source.generate(&WorkloadRequest::new(2, 1, "p")).unwrap();
        assert_eq!(w.ptgs()[0].num_tasks(), 25); // Strassen, not random
    }

    #[test]
    fn debug_lists_names() {
        let catalog = WorkloadCatalog::builtin();
        let dbg = format!("{catalog:?}");
        assert!(dbg.contains("daggen"));
        assert!(dbg.contains("poisson"));
    }
}
