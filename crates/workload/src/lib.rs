//! # mcsched-workload
//!
//! Everything *upstream* of the scheduler: workload generation, arrival
//! processes and replayable traces. The crate owns the production of
//! [`mcsched_core::Workload`] values so that campaigns, benchmarks and user
//! programs all draw their concurrent applications through one
//! name-resolvable interface (mirroring the policy registry of
//! `mcsched-core`).
//!
//! ## Modules
//!
//! * [`daggen`] — a faithful DAGGEN-style random-DAG generator parameterised
//!   like the generation program used by the paper's authors (see the
//!   parameter mapping below);
//! * [`calibration`] — width-distribution statistics comparing the DAGGEN
//!   generator, the legacy `mcsched_ptg::gen::random` generator and the
//!   paper's nominal widths, closing the ROADMAP fidelity item;
//! * [`arrival`] — seeded arrival processes (batch, Poisson, uniform,
//!   bursty) producing deterministic per-application release times;
//! * [`source`] — the [`WorkloadSource`] trait and the built-in generator
//!   sources;
//! * [`stream`] — lazy unbounded [`stream::JobStream`]s splitting arrival
//!   timing from on-demand graph materialisation, the bounded-memory feed
//!   of the online scheduler;
//! * [`catalog`] — the [`WorkloadCatalog`] resolving spec strings such as
//!   `daggen@n=50,width=0.5` or `poisson@lambda=0.1` into sources;
//! * [`trace`] — JSON export/import of complete workloads (graphs, costs,
//!   release times and seed provenance) so campaigns are replayable and
//!   shareable.
//!
//! ## Parameter mapping to the paper's generator
//!
//! The paper (conf_ipps_NTakpeS09, Section 2) generates its synthetic PTGs
//! with the authors' DAG generation program (DAGGEN). The table below maps
//! every knob of [`daggen::DaggenConfig`] to the corresponding parameter of
//! that program:
//!
//! | `DaggenConfig` field | paper / DAGGEN parameter | semantics |
//! |----------------------|--------------------------|-----------|
//! | `num_tasks`          | `n` (10, 20, 50)         | number of data-parallel tasks |
//! | `fat`                | `fat` / *width* (0.2, 0.5, 0.8) | mean tasks per precedence level is `fat · √n` |
//! | `regularity`         | `regular` (0.2, 0.8)     | level sizes drawn uniformly in `[r·w̄, (2−r)·w̄]` |
//! | `density`            | `density` (0.2, 0.8)     | extra parents per task: up to `density · (window − 1)` |
//! | `jump`               | `jump` (1, 2, 4)         | parents may come from the `jump` previous levels |
//! | `ccr`                | `ccr`                    | edge bytes are `ccr · 8 · d` (1 = the paper's `8·d`) |
//! | `cost_scenario`      | complexity scenarios     | `a·d`, `a·d·log d`, `d^{3/2}` or mixed |
//!
//! The crucial fidelity difference with the legacy
//! [`mcsched_ptg::gen::random`] generator: DAGGEN's mean level width is
//! `fat · √n`, while the legacy generator uses `n^width`. For `n = 50` and
//! the paper's width values this yields mean widths of 1.4/3.5/5.7
//! (DAGGEN) versus 2.2/7.1/22.9 (legacy) — the legacy DAGs are much wider,
//! which distorts the width-proportional (`PS-width`/`WPS-width`) and
//! work-proportional fairness orderings of Figures 2 and 3. The
//! [`calibration`] module quantifies this gap.
//!
//! ## Quick start
//!
//! ```
//! use mcsched_workload::{WorkloadCatalog, WorkloadRequest};
//!
//! let catalog = WorkloadCatalog::builtin();
//! let source = catalog.resolve("daggen@n=20,width=0.5/poisson@lambda=0.01").unwrap();
//! let workload = source
//!     .generate(&WorkloadRequest::new(42, 4, "demo"))
//!     .unwrap();
//! assert_eq!(workload.len(), 4);
//! assert!(!workload.is_batch()); // Poisson arrivals → timed releases
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arrival;
pub mod calibration;
pub mod catalog;
pub mod daggen;
pub mod json;
pub mod source;
pub mod stream;
pub mod trace;

pub use arrival::ArrivalProcess;
pub use calibration::{compare_paper_widths, width_report, WidthComparison, WidthReport};
pub use catalog::WorkloadCatalog;
pub use daggen::{daggen_ptg, DaggenConfig};
pub use source::{AppGenerator, GeneratorSource, WorkloadRequest, WorkloadSource};
pub use stream::{Arrival, GeneratorStream, JobStream, StreamRequest};
pub use trace::{Trace, TraceEntry, TraceSource};
