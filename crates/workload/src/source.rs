//! The [`WorkloadSource`] trait and the built-in generator-backed sources.
//!
//! A workload source turns a *request* — seed, application count, label —
//! into a submission-ready [`Workload`]. Sources are deterministic: the same
//! request always yields the same workload, which is what makes campaigns
//! reproducible and traces replayable. The experiment harness drives
//! everything (campaigns, µ-sweeps, trace export) through this trait, in the
//! same way the scheduler drives policies through the policy traits.

use crate::arrival::ArrivalProcess;
use crate::daggen::{daggen_ptg, DaggenConfig};
use crate::stream::{GeneratorStream, JobStream, StreamRequest};
use mcsched_core::{SchedError, Workload};
use mcsched_ptg::gen::{fft_ptg, strassen_ptg, PtgClass};
use mcsched_ptg::Ptg;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One deterministic workload request: which seed to draw from, how many
/// applications, and the name prefix of the generated applications
/// (application `i` is named `{label}-{i}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadRequest {
    /// Seed of the per-request RNG.
    pub seed: u64,
    /// Number of applications to produce.
    pub count: usize,
    /// Name prefix of the generated applications, also attached to the
    /// produced workload as its label.
    pub label: String,
}

impl WorkloadRequest {
    /// Builds a request.
    pub fn new(seed: u64, count: usize, label: impl Into<String>) -> Self {
        Self {
            seed,
            count,
            label: label.into(),
        }
    }
}

/// A deterministic producer of [`Workload`]s.
///
/// Implementations must be pure functions of the request: two calls with an
/// identical [`WorkloadRequest`] return identical workloads.
pub trait WorkloadSource: std::fmt::Debug + Send + Sync {
    /// The canonical spec string of the source, resolvable back through the
    /// [`crate::catalog::WorkloadCatalog`] (e.g. `daggen@n=50,width=0.5`).
    fn spec(&self) -> String;

    /// A short label for scenario names and report headers: the spec up to
    /// the first parameter/arrival separator (e.g. `daggen`).
    fn short_label(&self) -> String {
        let spec = self.spec();
        spec.split(['@', '/', '+'])
            .next()
            .unwrap_or_default()
            .to_string()
    }

    /// Produces the workload of one request.
    ///
    /// # Errors
    ///
    /// [`SchedError`] when the source cannot satisfy the request (invalid
    /// configuration, or a trace that does not contain the request).
    fn generate(&self, request: &WorkloadRequest) -> Result<Workload, SchedError>;

    /// Opens an unbounded lazy [`JobStream`] over the source — the online
    /// scheduler's entry point (see [`crate::stream`] for the determinism
    /// contract). Sources that can only replay finite materialised data
    /// (traces) keep the default refusal.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] when the source does not support
    /// streaming or its parameters fail validation.
    fn stream(&self, request: &StreamRequest) -> Result<Box<dyn JobStream>, SchedError> {
        let _ = request;
        Err(SchedError::InvalidConfig(format!(
            "workload source `{}` does not support streaming",
            self.spec()
        )))
    }
}

/// One application-graph generator usable inside a [`GeneratorSource`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AppGenerator {
    /// The legacy paper-grid sampler of [`mcsched_ptg::gen::random`]: each
    /// application draws a configuration uniformly from the paper grid.
    /// Byte-identical to the pre-subsystem generation path.
    Random,
    /// The DAGGEN-style generator with a fixed configuration.
    Daggen(DaggenConfig),
    /// The DAGGEN-style generator drawing a fresh configuration per
    /// application uniformly from the paper grid — the *calibrated*
    /// counterpart of [`AppGenerator::Random`] for reproducing the paper's
    /// random-PTG figures.
    DaggenGrid,
    /// FFT task graphs; `points` fixes the transform size, `None` draws
    /// uniformly from the paper's {4, 8, 16}.
    Fft {
        /// Number of points of the transform (a power of two ≥ 2).
        points: Option<usize>,
    },
    /// Strassen matrix-multiplication task graphs (fixed 25-task shape).
    Strassen,
}

impl AppGenerator {
    /// Short class label (used in scenario names).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AppGenerator::Random => "random",
            AppGenerator::Daggen(_) => "daggen",
            AppGenerator::DaggenGrid => "daggen-grid",
            AppGenerator::Fft { .. } => "fft",
            AppGenerator::Strassen => "strassen",
        }
    }

    /// The canonical spec fragment of this generator.
    #[must_use]
    pub fn spec(&self) -> String {
        match self {
            AppGenerator::Random => "random".to_string(),
            AppGenerator::Daggen(cfg) => {
                let costs = match cfg.cost_scenario {
                    mcsched_ptg::gen::CostScenario::Linear => "linear",
                    mcsched_ptg::gen::CostScenario::LogLinear => "loglinear",
                    mcsched_ptg::gen::CostScenario::MatrixProduct => "matrix",
                    mcsched_ptg::gen::CostScenario::Mixed => "mixed",
                };
                format!(
                    "daggen@n={},width={},regularity={},density={},jump={},ccr={},costs={costs}",
                    cfg.num_tasks, cfg.fat, cfg.regularity, cfg.density, cfg.jump, cfg.ccr
                )
            }
            AppGenerator::DaggenGrid => "daggen-grid".to_string(),
            AppGenerator::Fft { points: None } => "fft".to_string(),
            AppGenerator::Fft {
                points: Some(points),
            } => format!("fft@points={points}"),
            AppGenerator::Strassen => "strassen".to_string(),
        }
    }

    /// Validates the generator parameters.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] when a parameter is outside its domain.
    pub fn validate(&self) -> Result<(), SchedError> {
        match self {
            AppGenerator::Daggen(cfg) => cfg.validate(),
            AppGenerator::Fft {
                points: Some(points),
            } if *points < 2 || !points.is_power_of_two() => Err(SchedError::InvalidConfig(
                format!("fft: points {points} must be a power of two ≥ 2"),
            )),
            _ => Ok(()),
        }
    }

    /// Draws one application graph.
    pub fn sample<R: Rng>(&self, rng: &mut R, name: impl Into<String>) -> Ptg {
        match self {
            // Delegate to `PtgClass::sample` so that the draw sequence stays
            // byte-identical to the legacy generation path.
            AppGenerator::Random => PtgClass::Random.sample(rng, name),
            AppGenerator::Daggen(cfg) => daggen_ptg(cfg, rng, name),
            AppGenerator::DaggenGrid => {
                let cfg = DaggenConfig::sample_paper_grid(rng);
                daggen_ptg(&cfg, rng, name)
            }
            AppGenerator::Fft { points: None } => PtgClass::Fft.sample(rng, name),
            AppGenerator::Fft {
                points: Some(points),
            } => fft_ptg(*points, rng, name),
            AppGenerator::Strassen => strassen_ptg(rng, name),
        }
    }
}

/// A [`WorkloadSource`] backed by one or more [`AppGenerator`]s and an
/// [`ArrivalProcess`]. With several generators, application `i` of a request
/// uses generator `i mod k` (a deterministic round-robin mixture, e.g.
/// `random+fft`); release times are drawn after all graphs from the same
/// request RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorSource {
    generators: Vec<AppGenerator>,
    arrival: ArrivalProcess,
}

impl GeneratorSource {
    /// A single-generator batch source.
    #[must_use]
    pub fn new(generator: AppGenerator) -> Self {
        Self {
            generators: vec![generator],
            arrival: ArrivalProcess::Batch,
        }
    }

    /// A round-robin mixture of generators.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] when `generators` is empty or one of
    /// them fails validation.
    pub fn mixed(generators: Vec<AppGenerator>) -> Result<Self, SchedError> {
        if generators.is_empty() {
            return Err(SchedError::InvalidConfig(
                "a workload source needs at least one generator".into(),
            ));
        }
        for g in &generators {
            g.validate()?;
        }
        Ok(Self {
            generators,
            arrival: ArrivalProcess::Batch,
        })
    }

    /// The batch source equivalent to the legacy [`PtgClass`] generation
    /// path (byte-identical draws and names).
    #[must_use]
    pub fn from_class(class: PtgClass) -> Self {
        Self::new(match class {
            PtgClass::Random => AppGenerator::Random,
            PtgClass::Fft => AppGenerator::Fft { points: None },
            PtgClass::Strassen => AppGenerator::Strassen,
        })
    }

    /// Replaces the arrival process.
    #[must_use]
    pub fn with_arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.arrival = arrival;
        self
    }

    /// The generators of the source, in round-robin order.
    #[must_use]
    pub fn generators(&self) -> &[AppGenerator] {
        &self.generators
    }

    /// The arrival process of the source.
    #[must_use]
    pub fn arrival(&self) -> ArrivalProcess {
        self.arrival
    }
}

impl WorkloadSource for GeneratorSource {
    fn spec(&self) -> String {
        let apps: Vec<String> = self.generators.iter().map(AppGenerator::spec).collect();
        let mut spec = apps.join("+");
        if self.arrival != ArrivalProcess::Batch {
            spec.push('/');
            spec.push_str(&self.arrival.spec());
        }
        spec
    }

    fn short_label(&self) -> String {
        if self.generators.len() == 1 {
            self.generators[0].label().to_string()
        } else {
            "mixed".to_string()
        }
    }

    fn generate(&self, request: &WorkloadRequest) -> Result<Workload, SchedError> {
        for g in &self.generators {
            g.validate()?;
        }
        self.arrival.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(request.seed);
        let ptgs: Vec<Ptg> = (0..request.count)
            .map(|i| {
                let generator = &self.generators[i % self.generators.len()];
                generator.sample(&mut rng, format!("{}-{}", request.label, i))
            })
            .collect();
        let release_times = self.arrival.release_times(request.count, &mut rng);
        Ok(Workload::released(ptgs, release_times)?.with_label(request.label.clone()))
    }

    fn stream(&self, request: &StreamRequest) -> Result<Box<dyn JobStream>, SchedError> {
        Ok(Box::new(GeneratorStream::new(self, request)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_class_source_matches_direct_sampling() {
        // The subsystem's contract with the committed figures: routing the
        // legacy generator through a WorkloadSource draws identical graphs.
        let source = GeneratorSource::from_class(PtgClass::Random);
        let request = WorkloadRequest::new(1234, 3, "random-0");
        let workload = source.generate(&request).unwrap();

        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let direct: Vec<Ptg> = (0..3)
            .map(|i| PtgClass::Random.sample(&mut rng, format!("random-0-{i}")))
            .collect();
        assert_eq!(workload.ptgs(), direct.as_slice());
        assert!(workload.is_batch());
        assert_eq!(workload.label(), Some("random-0"));
    }

    #[test]
    fn generation_is_deterministic_across_runs() {
        let source = GeneratorSource::new(AppGenerator::Daggen(DaggenConfig::new(20)))
            .with_arrival(ArrivalProcess::Poisson { lambda: 0.01 });
        let request = WorkloadRequest::new(77, 4, "w");
        assert_eq!(
            source.generate(&request).unwrap(),
            source.generate(&request).unwrap()
        );
    }

    #[test]
    fn mixture_round_robins_generators() {
        let source = GeneratorSource::mixed(vec![
            AppGenerator::Strassen,
            AppGenerator::Fft { points: Some(4) },
        ])
        .unwrap();
        let workload = source.generate(&WorkloadRequest::new(5, 4, "mix")).unwrap();
        // Strassen graphs have 25 tasks, 4-point FFTs 15.
        let sizes: Vec<usize> = workload.ptgs().iter().map(Ptg::num_tasks).collect();
        assert_eq!(sizes, vec![25, 15, 25, 15]);
        assert_eq!(source.short_label(), "mixed");
    }

    #[test]
    fn fixed_fft_points_are_honoured() {
        let source = GeneratorSource::new(AppGenerator::Fft { points: Some(8) });
        let workload = source.generate(&WorkloadRequest::new(9, 2, "fft")).unwrap();
        for ptg in workload.ptgs() {
            assert_eq!(ptg.num_tasks(), 39); // 2m−1 + m·log2(m) for m = 8
        }
    }

    #[test]
    fn timed_arrivals_produce_released_workloads() {
        let source =
            GeneratorSource::new(AppGenerator::Strassen).with_arrival(ArrivalProcess::Bursty {
                burst: 2,
                gap: 50.0,
            });
        let workload = source.generate(&WorkloadRequest::new(3, 4, "b")).unwrap();
        assert!(!workload.is_batch());
        assert_eq!(workload.release_times(), &[0.0, 0.0, 50.0, 50.0]);
    }

    #[test]
    fn invalid_generators_error_out() {
        assert!(GeneratorSource::mixed(vec![]).is_err());
        let source = GeneratorSource::new(AppGenerator::Fft { points: Some(3) });
        assert!(matches!(
            source.generate(&WorkloadRequest::new(1, 1, "x")),
            Err(SchedError::InvalidConfig(_))
        ));
    }

    #[test]
    fn specs_are_canonical_and_carry_the_arrival() {
        let source = GeneratorSource::new(AppGenerator::Random);
        assert_eq!(source.spec(), "random");
        assert_eq!(source.short_label(), "random");
        let timed = GeneratorSource::mixed(vec![
            AppGenerator::Random,
            AppGenerator::Fft { points: Some(8) },
        ])
        .unwrap()
        .with_arrival(ArrivalProcess::Poisson { lambda: 0.5 });
        assert_eq!(timed.spec(), "random+fft@points=8/poisson@lambda=0.5");
    }
}
