//! Seeded arrival processes producing deterministic release times.
//!
//! The paper's evaluation submits every application at time 0 (a batch) and
//! sketches timed releases as future work. The processes below produce the
//! `release_times` vector of a timed [`mcsched_core::Workload`]; all of them
//! anchor the first application at `t = 0` so that batch and timed scenarios
//! stay directly comparable, and all draws go through the caller's seeded
//! RNG, so a (spec, seed) pair always reproduces the same schedule.

use mcsched_core::SchedError;
use rand::Rng;

/// An arrival process: how the release times of `n` concurrent applications
/// are spaced.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ArrivalProcess {
    /// Everything released at time 0 (the paper's scenario).
    Batch,
    /// Poisson process: i.i.d. exponential interarrival times with rate
    /// `lambda` (mean spacing `1/λ` seconds).
    Poisson {
        /// Arrival rate λ in applications per second (> 0).
        lambda: f64,
    },
    /// Independent uniform interarrival times in `[lo, hi]` seconds.
    Uniform {
        /// Smallest interarrival gap (≥ 0).
        lo: f64,
        /// Largest interarrival gap (≥ `lo`).
        hi: f64,
    },
    /// Deterministic bursts: applications arrive in groups of `burst`, one
    /// group every `gap` seconds (group `k` at `k · gap`).
    Bursty {
        /// Applications per burst (≥ 1).
        burst: usize,
        /// Seconds between consecutive bursts (> 0).
        gap: f64,
    },
}

impl ArrivalProcess {
    /// Validates the process parameters.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] when a parameter is outside its domain.
    pub fn validate(&self) -> Result<(), SchedError> {
        let err = |what: String| Err(SchedError::InvalidConfig(what));
        match *self {
            ArrivalProcess::Batch => Ok(()),
            ArrivalProcess::Poisson { lambda } => {
                if lambda > 0.0 && lambda.is_finite() {
                    Ok(())
                } else {
                    err(format!("poisson: lambda {lambda} must be finite and > 0"))
                }
            }
            ArrivalProcess::Uniform { lo, hi } => {
                if lo >= 0.0 && hi >= lo && hi.is_finite() {
                    Ok(())
                } else {
                    err(format!("uniform: invalid interarrival range [{lo}, {hi}]"))
                }
            }
            ArrivalProcess::Bursty { burst, gap } => {
                if burst == 0 {
                    err("bursty: burst size must be at least 1".into())
                } else if gap > 0.0 && gap.is_finite() {
                    Ok(())
                } else {
                    err(format!("bursty: gap {gap} must be finite and > 0"))
                }
            }
        }
    }

    /// Draws `n` non-decreasing release times, the first at `t = 0`.
    ///
    /// The batch process draws nothing from `rng`, so a batch source is
    /// byte-identical to the legacy no-arrival generation path. Delegates to
    /// [`ArrivalProcess::release_iter`]; the draw sequence is bit-identical
    /// to the historical closed-form implementation.
    pub fn release_times<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        self.release_iter(&mut *rng).take(n).collect()
    }

    /// An *unbounded* iterator of non-decreasing release times, the first at
    /// `t = 0` — the streaming form of [`ArrivalProcess::release_times`] for
    /// callers (the online scheduler) that do not know the job count up
    /// front. Yielding index `i > 0` performs exactly the draws the vector
    /// form performs for index `i`, so `release_iter(rng).take(n)` is
    /// bit-identical to `release_times(n, rng)`.
    pub fn release_iter<R: Rng>(&self, rng: R) -> ReleaseIter<R> {
        ReleaseIter {
            process: *self,
            rng,
            index: 0,
            t: 0.0,
        }
    }

    /// The canonical spec string of the process (parsable by the
    /// [`crate::catalog::WorkloadCatalog`]).
    #[must_use]
    pub fn spec(&self) -> String {
        match *self {
            ArrivalProcess::Batch => "batch".to_string(),
            ArrivalProcess::Poisson { lambda } => format!("poisson@lambda={lambda}"),
            ArrivalProcess::Uniform { lo, hi } => format!("uniform@lo={lo},hi={hi}"),
            ArrivalProcess::Bursty { burst, gap } => format!("bursty@burst={burst},gap={gap}"),
        }
    }
}

/// The unbounded release-time stream returned by
/// [`ArrivalProcess::release_iter`]. Never returns `None`.
#[derive(Debug)]
pub struct ReleaseIter<R> {
    process: ArrivalProcess,
    rng: R,
    index: u64,
    t: f64,
}

impl<R: Rng> Iterator for ReleaseIter<R> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let i = self.index;
        self.index += 1;
        let t = match self.process {
            ArrivalProcess::Batch => 0.0,
            ArrivalProcess::Poisson { lambda } => {
                if i > 0 {
                    let u: f64 = self.rng.gen_range(0.0..1.0);
                    self.t += -(1.0 - u).ln() / lambda;
                }
                self.t
            }
            ArrivalProcess::Uniform { lo, hi } => {
                if i > 0 {
                    self.t += if hi > lo {
                        self.rng.gen_range(lo..=hi)
                    } else {
                        lo
                    };
                }
                self.t
            }
            ArrivalProcess::Bursty { burst, gap } => (i / burst as u64) as f64 * gap,
        };
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (usize::MAX, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// The pre-iterator closed-form implementation, frozen verbatim as the
    /// bit-equality oracle for the delegating vector form.
    fn frozen_release_times<R: Rng>(process: &ArrivalProcess, n: usize, rng: &mut R) -> Vec<f64> {
        match *process {
            ArrivalProcess::Batch => vec![0.0; n],
            ArrivalProcess::Poisson { lambda } => {
                let mut t = 0.0f64;
                (0..n)
                    .map(|i| {
                        if i > 0 {
                            let u: f64 = rng.gen_range(0.0..1.0);
                            t += -(1.0 - u).ln() / lambda;
                        }
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Uniform { lo, hi } => {
                let mut t = 0.0f64;
                (0..n)
                    .map(|i| {
                        if i > 0 {
                            t += if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                        }
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Bursty { burst, gap } => {
                (0..n).map(|i| (i / burst) as f64 * gap).collect()
            }
        }
    }

    #[test]
    fn vector_form_is_bit_identical_to_frozen_closed_form() {
        let processes = [
            ArrivalProcess::Batch,
            ArrivalProcess::Poisson { lambda: 0.05 },
            ArrivalProcess::Uniform { lo: 2.0, hi: 5.0 },
            ArrivalProcess::Uniform { lo: 3.0, hi: 3.0 },
            ArrivalProcess::Bursty {
                burst: 3,
                gap: 60.0,
            },
        ];
        for process in &processes {
            for n in [0usize, 1, 2, 7, 100] {
                let new = process.release_times(n, &mut rng(42));
                let old = frozen_release_times(process, n, &mut rng(42));
                let new_bits: Vec<u64> = new.iter().map(|t| t.to_bits()).collect();
                let old_bits: Vec<u64> = old.iter().map(|t| t.to_bits()).collect();
                assert_eq!(new_bits, old_bits, "{} n={n}", process.spec());
            }
        }
    }

    #[test]
    fn release_iter_is_unbounded_and_leaves_rng_in_vector_state() {
        let p = ArrivalProcess::Poisson { lambda: 0.2 };
        // Pulling n items from the iterator advances the RNG exactly as the
        // vector form does, so the two can be interleaved with other draws.
        let mut r1 = rng(7);
        let _ = p.release_times(10, &mut r1);
        let mut r2 = rng(7);
        let _: Vec<f64> = p.release_iter(&mut r2).take(10).collect();
        assert_eq!(r1.gen_range(0..u32::MAX), r2.gen_range(0..u32::MAX));
        // The iterator never ends (spot-check well past typical batch sizes).
        let mut it = ArrivalProcess::Bursty { burst: 2, gap: 5.0 }.release_iter(rng(0));
        assert_eq!(it.nth(9_999), Some(24_995.0));
    }

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn batch_is_all_zero_and_draws_nothing() {
        let mut r1 = rng(1);
        let times = ArrivalProcess::Batch.release_times(5, &mut r1);
        assert_eq!(times, vec![0.0; 5]);
        // The RNG stream is untouched: the next draw matches a fresh RNG.
        let mut r2 = rng(1);
        assert_eq!(r1.gen_range(0..100u32), r2.gen_range(0..100u32));
    }

    #[test]
    fn poisson_is_non_decreasing_deterministic_and_anchored_at_zero() {
        let p = ArrivalProcess::Poisson { lambda: 0.05 };
        let a = p.release_times(10, &mut rng(9));
        let b = p.release_times(10, &mut rng(9));
        assert_eq!(a, b);
        assert_eq!(a[0], 0.0);
        for w in a.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(a[9] > 0.0);
    }

    #[test]
    fn poisson_mean_spacing_tracks_one_over_lambda() {
        let p = ArrivalProcess::Poisson { lambda: 0.1 };
        let times = p.release_times(2000, &mut rng(3));
        let mean_gap = times[1999] / 1999.0;
        assert!(
            (mean_gap - 10.0).abs() < 1.0,
            "mean gap {mean_gap:.2} should be near 1/λ = 10"
        );
    }

    #[test]
    fn uniform_gaps_stay_in_range() {
        let p = ArrivalProcess::Uniform { lo: 2.0, hi: 5.0 };
        let times = p.release_times(50, &mut rng(4));
        for w in times.windows(2) {
            let gap = w[1] - w[0];
            assert!((2.0..=5.0).contains(&gap), "gap {gap}");
        }
        let degenerate = ArrivalProcess::Uniform { lo: 3.0, hi: 3.0 };
        let times = degenerate.release_times(4, &mut rng(4));
        assert_eq!(times, vec![0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn bursty_groups_share_release_times() {
        let p = ArrivalProcess::Bursty {
            burst: 3,
            gap: 100.0,
        };
        let times = p.release_times(7, &mut rng(0));
        assert_eq!(times, vec![0.0, 0.0, 0.0, 100.0, 100.0, 100.0, 200.0]);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ArrivalProcess::Poisson { lambda: 0.0 }.validate().is_err());
        assert!(ArrivalProcess::Poisson { lambda: f64::NAN }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Uniform { lo: -1.0, hi: 2.0 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Uniform { lo: 5.0, hi: 2.0 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Bursty {
            burst: 0,
            gap: 10.0
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Bursty { burst: 2, gap: 0.0 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Batch.validate().is_ok());
    }

    #[test]
    fn specs_render_canonically() {
        assert_eq!(ArrivalProcess::Batch.spec(), "batch");
        assert_eq!(
            ArrivalProcess::Poisson { lambda: 0.1 }.spec(),
            "poisson@lambda=0.1"
        );
        assert_eq!(
            ArrivalProcess::Bursty {
                burst: 4,
                gap: 60.0
            }
            .spec(),
            "bursty@burst=4,gap=60"
        );
    }
}
