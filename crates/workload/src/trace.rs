//! Replayable workload traces: JSON export/import of complete workloads.
//!
//! A trace captures everything a campaign consumed upstream of the
//! scheduler — application graphs with their exact task costs, edge volumes,
//! release times, plus the seed provenance of every generation request — so
//! an experiment can be re-run bit-identically on another machine, shared
//! alongside a paper, or replayed against a modified scheduler.
//!
//! Numbers are serialized with Rust's shortest round-trip `f64` formatting
//! and parsed back verbatim (see [`crate::json`]), so an export → import
//! cycle reproduces every cost bit-exactly and therefore every downstream
//! schedule decision. Imports re-validate everything: graphs go through
//! [`PtgBuilder::build`] (DAG checks), release times through
//! [`Workload::released`] (finite, non-negative), and task costs and edge
//! volumes against the task-model domains, so a hand-edited trace cannot
//! smuggle an invalid workload past the scheduler.

use crate::json::Json;
use crate::source::{WorkloadRequest, WorkloadSource};
use mcsched_core::{SchedError, Workload};
use mcsched_ptg::{CostModel, DataParallelTask, Ptg, PtgBuilder};
use std::path::Path;
use std::sync::Arc;

/// Identifier of the current trace format.
pub const TRACE_FORMAT: &str = "mcsched-trace/v1";

/// One recorded generation request and the workload it produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// The request that produced the workload (seed provenance).
    pub request: WorkloadRequest,
    /// The complete workload (graphs, costs, release times, label).
    pub workload: Workload,
}

/// A replayable set of workloads with their generation provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Canonical spec of the source that produced the trace.
    pub spec: String,
    /// The campaign's base seed (entry seeds derive from it).
    pub base_seed: u64,
    /// The recorded workloads, in generation order.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// An empty trace for the given provenance.
    #[must_use]
    pub fn new(spec: impl Into<String>, base_seed: u64) -> Self {
        Self {
            spec: spec.into(),
            base_seed,
            entries: Vec::new(),
        }
    }

    /// Generates and records every request against `source`.
    ///
    /// # Errors
    ///
    /// Propagates the first generation failure.
    pub fn record(
        source: &dyn WorkloadSource,
        requests: &[WorkloadRequest],
        base_seed: u64,
    ) -> Result<Self, SchedError> {
        let mut trace = Trace::new(source.spec(), base_seed);
        for request in requests {
            let workload = source.generate(request)?;
            trace.entries.push(TraceEntry {
                request: request.clone(),
                workload,
            });
        }
        Ok(trace)
    }

    /// Looks up the entry recorded for `(count, label)`.
    #[must_use]
    pub fn find(&self, count: usize, label: &str) -> Option<&TraceEntry> {
        self.entries
            .iter()
            .find(|e| e.request.count == count && e.request.label == label)
    }

    /// Serializes the trace as a JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("seed".into(), Json::num_u64(e.request.seed)),
                    ("count".into(), Json::num_usize(e.request.count)),
                    ("label".into(), Json::Str(e.request.label.clone())),
                    ("workload".into(), workload_to_json(&e.workload)),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("format".into(), Json::Str(TRACE_FORMAT.into())),
            ("spec".into(), Json::Str(self.spec.clone())),
            ("base_seed".into(), Json::num_u64(self.base_seed)),
            ("entries".into(), Json::Arr(entries)),
        ]);
        doc.render()
    }

    /// Parses a trace from a JSON document produced by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] on syntax errors, format mismatches,
    /// invalid graphs or invalid release times.
    pub fn from_json(text: &str) -> Result<Self, SchedError> {
        let doc = Json::parse(text)
            .map_err(|e| SchedError::InvalidConfig(format!("trace is not valid JSON: {e}")))?;
        let format = doc
            .get("format")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid("missing `format`"))?;
        if format != TRACE_FORMAT {
            return Err(invalid(&format!(
                "unsupported trace format `{format}` (expected `{TRACE_FORMAT}`)"
            )));
        }
        let spec = doc
            .get("spec")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid("missing `spec`"))?
            .to_string();
        let base_seed = doc
            .get("base_seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| invalid("missing `base_seed`"))?;
        let mut entries = Vec::new();
        for entry in doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("missing `entries`"))?
        {
            let seed = entry
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or_else(|| invalid("entry missing `seed`"))?;
            let count = entry
                .get("count")
                .and_then(Json::as_usize)
                .ok_or_else(|| invalid("entry missing `count`"))?;
            let label = entry
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| invalid("entry missing `label`"))?
                .to_string();
            let workload = workload_from_json(
                entry
                    .get("workload")
                    .ok_or_else(|| invalid("entry missing `workload`"))?,
            )?;
            if workload.len() != count {
                return Err(invalid(&format!(
                    "entry `{label}` records count {count} but holds {} applications",
                    workload.len()
                )));
            }
            entries.push(TraceEntry {
                request: WorkloadRequest::new(seed, count, label),
                workload,
            });
        }
        Ok(Self {
            spec,
            base_seed,
            entries,
        })
    }

    /// Writes the trace to `path` as JSON.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] describing the I/O failure.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), SchedError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()).map_err(|e| {
            SchedError::InvalidConfig(format!("cannot write trace {}: {e}", path.display()))
        })
    }

    /// Reads a trace from a JSON file.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] on I/O or parse failures.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, SchedError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            SchedError::InvalidConfig(format!("cannot read trace {}: {e}", path.display()))
        })?;
        Self::from_json(&text)
    }
}

fn invalid(what: &str) -> SchedError {
    SchedError::InvalidConfig(format!("trace: {what}"))
}

fn workload_to_json(workload: &Workload) -> Json {
    let apps: Vec<Json> = workload
        .ptgs()
        .iter()
        .zip(workload.release_times())
        .map(|(ptg, &release)| {
            let tasks: Vec<Json> = ptg.tasks().iter().map(task_to_json).collect();
            let edges: Vec<Json> = ptg
                .edges()
                .iter()
                .map(|e| {
                    Json::Arr(vec![
                        Json::num_usize(e.src),
                        Json::num_usize(e.dst),
                        Json::num_f64(e.bytes),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("name".into(), Json::Str(ptg.name().to_string())),
                ("release".into(), Json::num_f64(release)),
                ("tasks".into(), Json::Arr(tasks)),
                ("edges".into(), Json::Arr(edges)),
            ])
        })
        .collect();
    let mut members = vec![("apps".to_string(), Json::Arr(apps))];
    if let Some(label) = workload.label() {
        members.insert(0, ("label".to_string(), Json::Str(label.to_string())));
    }
    Json::Obj(members)
}

fn task_to_json(task: &DataParallelTask) -> Json {
    let mut members = vec![
        ("name".to_string(), Json::Str(task.name().to_string())),
        ("d".to_string(), Json::num_f64(task.data_elems())),
        ("alpha".to_string(), Json::num_f64(task.alpha())),
    ];
    match task.cost_model() {
        CostModel::Linear { a } => {
            members.push(("cost".into(), Json::Str("linear".into())));
            members.push(("a".into(), Json::num_f64(a)));
        }
        CostModel::LogLinear { a } => {
            members.push(("cost".into(), Json::Str("loglinear".into())));
            members.push(("a".into(), Json::num_f64(a)));
        }
        CostModel::MatrixProduct => {
            members.push(("cost".into(), Json::Str("matrix".into())));
        }
    }
    Json::Obj(members)
}

fn workload_from_json(value: &Json) -> Result<Workload, SchedError> {
    let apps = value
        .get("apps")
        .and_then(Json::as_arr)
        .ok_or_else(|| invalid("workload missing `apps`"))?;
    let mut ptgs: Vec<Ptg> = Vec::with_capacity(apps.len());
    let mut releases: Vec<f64> = Vec::with_capacity(apps.len());
    for app in apps {
        let name = app
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid("app missing `name`"))?;
        let release = app
            .get("release")
            .and_then(Json::as_f64)
            .ok_or_else(|| invalid("app missing `release`"))?;
        let mut builder = PtgBuilder::new(name);
        for task in app
            .get("tasks")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("app missing `tasks`"))?
        {
            builder.add_task(task_from_json(task)?);
        }
        for edge in app
            .get("edges")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("app missing `edges`"))?
        {
            let triple = edge
                .as_arr()
                .ok_or_else(|| invalid("edge is not a triple"))?;
            let (src, dst, bytes) = match triple {
                [s, d, b] => (
                    s.as_usize().ok_or_else(|| invalid("edge src"))?,
                    d.as_usize().ok_or_else(|| invalid("edge dst"))?,
                    b.as_f64().ok_or_else(|| invalid("edge bytes"))?,
                ),
                _ => return Err(invalid("edge is not a [src, dst, bytes] triple")),
            };
            if !bytes.is_finite() || bytes < 0.0 {
                return Err(invalid(&format!(
                    "edge volume {bytes} is not a finite non-negative byte count"
                )));
            }
            builder.add_edge(src, dst, bytes);
        }
        let ptg = builder
            .build()
            .map_err(|e| invalid(&format!("app `{name}` is not a valid PTG: {e}")))?;
        ptgs.push(ptg);
        releases.push(release);
    }
    // Route through `Workload::released` so invalid release times in a
    // hand-edited trace are rejected with `InvalidConfig`.
    let workload = Workload::released(ptgs, releases)?;
    Ok(match value.get("label").and_then(Json::as_str) {
        Some(label) => workload.with_label(label),
        None => workload,
    })
}

fn task_from_json(value: &Json) -> Result<DataParallelTask, SchedError> {
    let name = value
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| invalid("task missing `name`"))?;
    let d = value
        .get("d")
        .and_then(Json::as_f64)
        .ok_or_else(|| invalid("task missing `d`"))?;
    let alpha = value
        .get("alpha")
        .and_then(Json::as_f64)
        .ok_or_else(|| invalid("task missing `alpha`"))?;
    // `DataParallelTask::new` accepts anything; enforce the task-model
    // domains here so a hand-edited trace (e.g. `"d":1e999`, `"alpha":7`)
    // cannot smuggle infinite or negative costs past the import boundary.
    if !d.is_finite() || d <= 0.0 {
        return Err(invalid(&format!(
            "task `{name}` dataset size {d} is not a finite positive element count"
        )));
    }
    if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) {
        return Err(invalid(&format!(
            "task `{name}` Amdahl fraction {alpha} is outside [0, 1]"
        )));
    }
    let a = value.get("a").and_then(Json::as_f64);
    if let Some(a) = a {
        if !a.is_finite() || a <= 0.0 {
            return Err(invalid(&format!(
                "task `{name}` cost multiplier {a} is not a finite positive factor"
            )));
        }
    }
    let cost = match value.get("cost").and_then(Json::as_str) {
        Some("linear") => CostModel::Linear {
            a: a.ok_or_else(|| invalid("linear cost missing `a`"))?,
        },
        Some("loglinear") => CostModel::LogLinear {
            a: a.ok_or_else(|| invalid("loglinear cost missing `a`"))?,
        },
        Some("matrix") => CostModel::MatrixProduct,
        Some(other) => return Err(invalid(&format!("unknown cost model `{other}`"))),
        None => return Err(invalid("task missing `cost`")),
    };
    Ok(DataParallelTask::new(name, d, cost, alpha))
}

/// A [`WorkloadSource`] replaying a recorded [`Trace`]: requests are matched
/// on `(count, label)`, so a campaign replayed with the same shape consumes
/// the recorded workloads instead of generating fresh ones.
#[derive(Debug, Clone)]
pub struct TraceSource {
    trace: Arc<Trace>,
}

impl TraceSource {
    /// Wraps a loaded trace.
    #[must_use]
    pub fn new(trace: Trace) -> Self {
        Self {
            trace: Arc::new(trace),
        }
    }

    /// The wrapped trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl WorkloadSource for TraceSource {
    fn spec(&self) -> String {
        // Re-exporting a replay must not stack `trace:` prefixes, or the
        // second-generation trace would stop resolving.
        if self.trace.spec.starts_with("trace:") {
            self.trace.spec.clone()
        } else {
            format!("trace:{}", self.trace.spec)
        }
    }

    fn short_label(&self) -> String {
        // Replayed requests are looked up by `(count, label)`, and the
        // harness labels requests `{short_label}-{combo}` — so the label must
        // be recovered from the recorded entries, not re-derived from the
        // spec (a mixture records `mixed-0` under the spec `random+fft`).
        match self.trace.entries.first() {
            Some(entry) => match entry.request.label.rsplit_once('-') {
                Some((prefix, combo))
                    if !prefix.is_empty() && combo.bytes().all(|b| b.is_ascii_digit()) =>
                {
                    prefix.to_string()
                }
                _ => entry.request.label.clone(),
            },
            None => "trace".to_string(),
        }
    }

    fn generate(&self, request: &WorkloadRequest) -> Result<Workload, SchedError> {
        self.trace
            .find(request.count, &request.label)
            .map(|e| e.workload.clone())
            .ok_or_else(|| {
                SchedError::InvalidConfig(format!(
                    "trace has no entry for {} applications labelled `{}` \
                     ({} entries recorded from `{}`)",
                    request.count,
                    request.label,
                    self.trace.entries.len(),
                    self.trace.spec
                ))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::source::{AppGenerator, GeneratorSource};

    fn sample_trace() -> Trace {
        let source = GeneratorSource::new(AppGenerator::Random)
            .with_arrival(ArrivalProcess::Poisson { lambda: 0.001 });
        let requests = vec![
            WorkloadRequest::new(11, 2, "random-0"),
            WorkloadRequest::new(12, 2, "random-1"),
        ];
        Trace::record(&source, &requests, 7).unwrap()
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let trace = sample_trace();
        let text = trace.to_json();
        let back = Trace::from_json(&text).unwrap();
        assert_eq!(trace, back);
        // Second generation differs from first (different seeds) but both
        // survive the round trip, including exact f64 costs.
        assert_ne!(back.entries[0].workload, back.entries[1].workload);
    }

    #[test]
    fn file_round_trip() {
        let trace = sample_trace();
        let path = std::env::temp_dir().join("mcsched_trace_test.json");
        trace.write_file(&path).unwrap();
        let back = Trace::read_file(&path).unwrap();
        assert_eq!(trace, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_source_replays_recorded_workloads() {
        let trace = sample_trace();
        let source = TraceSource::new(trace.clone());
        let replayed = source
            .generate(&WorkloadRequest::new(999, 2, "random-1"))
            .unwrap();
        assert_eq!(replayed, trace.entries[1].workload);
        assert_eq!(source.short_label(), "random");
        assert!(source.spec().starts_with("trace:"));
        assert!(source
            .generate(&WorkloadRequest::new(0, 5, "missing"))
            .is_err());
    }

    #[test]
    fn rejects_wrong_format_and_syntax() {
        assert!(matches!(
            Trace::from_json("not json"),
            Err(SchedError::InvalidConfig(_))
        ));
        assert!(matches!(
            Trace::from_json("{\"format\":\"other/v9\"}"),
            Err(SchedError::InvalidConfig(_))
        ));
        assert!(matches!(
            Trace::from_json("{\"format\":\"mcsched-trace/v1\",\"spec\":\"x\"}"),
            Err(SchedError::InvalidConfig(_))
        ));
    }

    #[test]
    fn mixture_traces_replay_under_the_recorded_labels() {
        // A mixture source labels its requests `mixed-{combo}`; the replay
        // must re-derive that prefix from the entries, not from the spec
        // head (`random+fft` would yield `random-0` and never match).
        let source = GeneratorSource::mixed(vec![
            AppGenerator::Random,
            AppGenerator::Fft { points: Some(4) },
        ])
        .unwrap();
        let label = source.short_label();
        let requests = vec![WorkloadRequest::new(3, 2, format!("{label}-0"))];
        let trace = Trace::record(&source, &requests, 3).unwrap();
        let replay = TraceSource::new(trace.clone());
        assert_eq!(replay.short_label(), label);
        let replayed = replay
            .generate(&WorkloadRequest::new(0, 2, format!("{label}-0")))
            .unwrap();
        assert_eq!(replayed, trace.entries[0].workload);
    }

    #[test]
    fn replays_re_export_and_replay_again() {
        // `--trace a.json --export-trace b.json` records the replay source
        // itself; the second-generation trace must still resolve.
        let first = sample_trace();
        let label = TraceSource::new(first.clone()).short_label();
        let requests: Vec<WorkloadRequest> =
            first.entries.iter().map(|e| e.request.clone()).collect();
        let second = Trace::record(&TraceSource::new(first.clone()), &requests, 7).unwrap();
        let replay = TraceSource::new(second);
        assert_eq!(replay.spec(), format!("trace:{}", first.spec));
        assert_eq!(replay.short_label(), label);
        let replayed = replay
            .generate(&WorkloadRequest::new(0, 2, "random-1"))
            .unwrap();
        assert_eq!(replayed, first.entries[1].workload);
    }

    #[test]
    fn rejects_invalid_costs_on_import() {
        let pristine = sample_trace().to_json();
        // `1e999` parses to +inf through the raw-token f64 reader; negative
        // dataset sizes and out-of-range Amdahl fractions are plain edits.
        for (needle, patch) in [
            ("\"d\":", "\"d\":1e999,\"_d\":"),
            ("\"d\":", "\"d\":-5,\"_d\":"),
            ("\"alpha\":", "\"alpha\":7,\"_alpha\":"),
            ("\"a\":", "\"a\":-1,\"_a\":"),
        ] {
            let text = pristine.replacen(needle, patch, 1);
            assert_ne!(text, pristine);
            assert!(
                matches!(Trace::from_json(&text), Err(SchedError::InvalidConfig(_))),
                "patch {patch} should be rejected"
            );
        }
    }

    #[test]
    fn rejects_negative_release_times_on_import() {
        // Satellite: hand-edited traces cannot smuggle invalid release times
        // past `Workload::released`.
        let mut text = sample_trace().to_json();
        let needle = "\"release\":0";
        assert!(text.contains(needle));
        text = text.replacen(needle, "\"release\":-5", 1);
        assert!(matches!(
            Trace::from_json(&text),
            Err(SchedError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_cyclic_graphs_on_import() {
        let trace = sample_trace();
        let mut text = trace.to_json();
        // Add a back edge duplicating the first edge reversed: [dst,src,...]
        // of an existing [src,dst,...] pair would need knowledge of the
        // graph; instead corrupt an edge to point at itself.
        let first_edge = text.find("\"edges\":[[").unwrap();
        let tail = &text[first_edge + 10..];
        let comma = tail.find(',').unwrap();
        let src: usize = tail[..comma].parse().unwrap();
        let rest = &tail[comma + 1..];
        let comma2 = rest.find(',').unwrap();
        let patched = format!("\"edges\":[[{src},{src},{}", &rest[comma2 + 1..comma2 + 2]);
        text.replace_range(
            first_edge..first_edge + 10 + comma + 1 + comma2 + 2,
            &patched,
        );
        assert!(matches!(
            Trace::from_json(&text),
            Err(SchedError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_count_mismatch() {
        let mut text = sample_trace().to_json();
        text = text.replacen("\"count\":2", "\"count\":3", 1);
        assert!(matches!(
            Trace::from_json(&text),
            Err(SchedError::InvalidConfig(_))
        ));
    }
}
