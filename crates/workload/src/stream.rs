//! Lazy, bounded-memory job streaming for the online scheduler.
//!
//! The batch path ([`crate::WorkloadSource::generate`]) materialises every
//! PTG of a request up front — fine for the paper's 2–30 application
//! snapshots, fatal for an open-system run that streams 10⁵–10⁶ jobs. A
//! [`JobStream`] splits arrival *timing* from graph *materialisation*:
//!
//! * [`JobStream::next_arrival`] advances the arrival process one job and
//!   returns only its index and release time (a few bytes);
//! * [`JobStream::materialize`] builds the PTG of one arrival on demand, as
//!   a pure function of `(stream seed, job index)`.
//!
//! The split is what makes admission control free: a job shed by the online
//! scheduler's bounded queue is *never generated*, and a completed job's
//! graph can be dropped immediately, so peak resident graphs are bounded by
//! queue capacity plus the in-flight set no matter how long the run is.
//!
//! ## Determinism contract
//!
//! A stream is a pure function of `(source spec, seed, label)`: the `i`-th
//! arrival and the `i`-th graph are reproduced exactly across runs, threads
//! and processes. Graph seeding is *per job* (a SplitMix64 stream derived
//! from the stream seed and the job index) rather than one shared RNG, so
//! materialisation order cannot matter. This intentionally differs from the
//! batch draw sequence of [`crate::WorkloadSource::generate`], which threads
//! one RNG through all graphs of a request — batch figures keep their bytes,
//! streaming gets order-independence.

use crate::arrival::ReleaseIter;
use crate::source::{AppGenerator, GeneratorSource, WorkloadSource};
use mcsched_core::{SchedError, Workload};
use mcsched_ptg::Ptg;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One streamed job request: the seed of the stream and the name prefix of
/// the generated applications (job `i` is named `{label}-{i}`), mirroring
/// [`crate::WorkloadRequest`] minus the up-front count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRequest {
    /// Seed of the stream; arrival draws and per-job graph seeds both derive
    /// from it (through distinct SplitMix64 domains).
    pub seed: u64,
    /// Name prefix of the generated applications.
    pub label: String,
}

impl StreamRequest {
    /// Builds a stream request.
    pub fn new(seed: u64, label: impl Into<String>) -> Self {
        Self {
            seed,
            label: label.into(),
        }
    }
}

/// One arrival announced by a [`JobStream`]: which job, and when. The graph
/// itself is materialised separately (or never, if the job is shed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Zero-based stream index of the job.
    pub index: u64,
    /// Absolute release time of the job (non-decreasing along the stream).
    pub release_time: f64,
}

/// A lazy, unbounded stream of arriving jobs (see the module docs for the
/// determinism contract and the timing/materialisation split).
pub trait JobStream: Send {
    /// Advances the arrival process one job. Generator-backed streams never
    /// end; `None` is reserved for finite streams (e.g. trace replay).
    fn next_arrival(&mut self) -> Option<Arrival>;

    /// Materialises the PTG of one announced arrival — a pure function of
    /// the stream seed and `arrival.index`, so it may be called lazily, out
    /// of order, or not at all.
    fn materialize(&self, arrival: &Arrival) -> Ptg;
}

/// SplitMix64 finalizer: the per-domain / per-job seed mixer.
const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Domain separator for the arrival-time RNG stream.
const ARRIVAL_DOMAIN: u64 = 0x6172_7269_7661_6c73; // "arrivals"
/// Domain separator for per-job graph RNG streams.
const GRAPH_DOMAIN: u64 = 0x6772_6170_6873_2121; // "graphs!!"

/// The [`JobStream`] of a [`GeneratorSource`]: an unbounded
/// [`ReleaseIter`] for timing plus per-job seeded graph draws, round-robin
/// across the source's generators exactly like the batch path.
#[derive(Debug)]
pub struct GeneratorStream {
    generators: Vec<AppGenerator>,
    releases: ReleaseIter<ChaCha8Rng>,
    seed: u64,
    label: String,
    next_index: u64,
}

impl GeneratorStream {
    /// Builds the stream of `source` for one request, validating the
    /// generators and the arrival process.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] when a generator or the arrival process
    /// fails validation.
    pub fn new(source: &GeneratorSource, request: &StreamRequest) -> Result<Self, SchedError> {
        for g in source.generators() {
            g.validate()?;
        }
        source.arrival().validate()?;
        let arrival_rng = ChaCha8Rng::seed_from_u64(splitmix64(request.seed ^ ARRIVAL_DOMAIN));
        Ok(Self {
            generators: source.generators().to_vec(),
            releases: source.arrival().release_iter(arrival_rng),
            seed: request.seed,
            label: request.label.clone(),
            next_index: 0,
        })
    }
}

impl JobStream for GeneratorStream {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let index = self.next_index;
        self.next_index += 1;
        // ReleaseIter is unbounded; `expect` documents the invariant.
        let release_time = self.releases.next().expect("release_iter is unbounded");
        Some(Arrival {
            index,
            release_time,
        })
    }

    fn materialize(&self, arrival: &Arrival) -> Ptg {
        let generator = &self.generators[(arrival.index % self.generators.len() as u64) as usize];
        let job_seed = splitmix64(self.seed ^ GRAPH_DOMAIN ^ splitmix64(arrival.index));
        let mut rng = ChaCha8Rng::seed_from_u64(job_seed);
        generator.sample(&mut rng, format!("{}-{}", self.label, arrival.index))
    }
}

/// Streaming entry point on [`WorkloadSource`]: sources that can produce an
/// unbounded lazy job stream override this. The default refuses (trace-backed
/// and other finite sources are batch-only for now).
///
/// # Errors
///
/// [`SchedError::InvalidConfig`] when the source does not support streaming
/// or its parameters fail validation.
pub fn open_stream(
    source: &dyn WorkloadSource,
    request: &StreamRequest,
) -> Result<Box<dyn JobStream>, SchedError> {
    source.stream(request)
}

/// Collects the first `count` jobs of a stream into a batch [`Workload`] —
/// the bridge used by tests and spot-checks to inspect a stream prefix with
/// the batch tooling. Not the batch generation path: graphs come from the
/// per-job seed streams.
///
/// # Errors
///
/// [`SchedError::InvalidConfig`] when the underlying source refuses to
/// stream, or the collected prefix fails workload validation.
pub fn collect_prefix(
    source: &dyn WorkloadSource,
    request: &StreamRequest,
    count: usize,
) -> Result<Workload, SchedError> {
    let mut stream = source.stream(request)?;
    let mut ptgs = Vec::with_capacity(count);
    let mut release_times = Vec::with_capacity(count);
    for _ in 0..count {
        let Some(arrival) = stream.next_arrival() else {
            break;
        };
        ptgs.push(stream.materialize(&arrival));
        release_times.push(arrival.release_time);
    }
    Ok(Workload::released(ptgs, release_times)?.with_label(request.label.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::daggen::DaggenConfig;
    use crate::source::WorkloadRequest;

    fn poisson_source() -> GeneratorSource {
        GeneratorSource::new(AppGenerator::Daggen(DaggenConfig::new(10)))
            .with_arrival(ArrivalProcess::Poisson { lambda: 0.5 })
    }

    #[test]
    fn stream_is_deterministic_and_order_independent() {
        let source = poisson_source();
        let request = StreamRequest::new(11, "s");
        let mut a = GeneratorStream::new(&source, &request).unwrap();
        let mut b = GeneratorStream::new(&source, &request).unwrap();
        let arrivals_a: Vec<Arrival> = (0..20).map(|_| a.next_arrival().unwrap()).collect();
        let arrivals_b: Vec<Arrival> = (0..20).map(|_| b.next_arrival().unwrap()).collect();
        assert_eq!(arrivals_a, arrivals_b);
        // Materialisation out of order (and skipping sheds) changes nothing.
        let forward: Vec<Ptg> = arrivals_a.iter().map(|x| a.materialize(x)).collect();
        let backward: Vec<Ptg> = arrivals_b.iter().rev().map(|x| b.materialize(x)).collect();
        for (i, ptg) in forward.iter().enumerate() {
            assert_eq!(*ptg, backward[19 - i]);
        }
    }

    #[test]
    fn arrivals_are_non_decreasing_and_anchored_at_zero() {
        let source = poisson_source();
        let mut stream = GeneratorStream::new(&source, &StreamRequest::new(3, "s")).unwrap();
        let mut last = 0.0;
        for i in 0..100u64 {
            let arrival = stream.next_arrival().unwrap();
            assert_eq!(arrival.index, i);
            assert!(arrival.release_time >= last);
            last = arrival.release_time;
        }
        assert!(last > 0.0);
    }

    #[test]
    fn mixtures_round_robin_like_the_batch_path() {
        let source = GeneratorSource::mixed(vec![
            AppGenerator::Strassen,
            AppGenerator::Fft { points: Some(4) },
        ])
        .unwrap();
        let workload = collect_prefix(&source, &StreamRequest::new(5, "mix"), 4).unwrap();
        let sizes: Vec<usize> = workload.ptgs().iter().map(Ptg::num_tasks).collect();
        assert_eq!(sizes, vec![25, 15, 25, 15]);
        assert_eq!(workload.ptgs()[3].name(), "mix-3");
    }

    #[test]
    fn different_seeds_diverge() {
        let source = poisson_source();
        let a = collect_prefix(&source, &StreamRequest::new(1, "s"), 5).unwrap();
        let b = collect_prefix(&source, &StreamRequest::new(2, "s"), 5).unwrap();
        assert_ne!(a.ptgs(), b.ptgs());
        assert_ne!(a.release_times(), b.release_times());
    }

    #[test]
    fn invalid_sources_refuse_to_stream() {
        let source = GeneratorSource::new(AppGenerator::Fft { points: Some(3) });
        assert!(GeneratorStream::new(&source, &StreamRequest::new(1, "x")).is_err());
    }

    #[test]
    fn batch_request_bridge_matches_stream_prefix() {
        // collect_prefix mirrors WorkloadRequest labelling conventions.
        let source = poisson_source();
        let request = StreamRequest::new(8, "w");
        let workload = collect_prefix(&source, &request, 3).unwrap();
        assert_eq!(workload.label(), Some("w"));
        assert_eq!(workload.ptgs().len(), 3);
        let batch = source.generate(&WorkloadRequest::new(8, 3, "w")).unwrap();
        // Streaming is per-job seeded, intentionally NOT the batch bytes.
        assert_ne!(workload.ptgs(), batch.ptgs());
    }
}
