//! Minimal JSON reader/writer for the trace format.
//!
//! The offline workspace vendors a no-op `serde` stand-in (see
//! `vendor/README.md`), so the trace subsystem carries its own small JSON
//! implementation. Numbers keep their *raw token text* ([`Json::Num`]), so
//! `u64` seeds above 2^53 and shortest-round-trip `f64` literals survive an
//! export → import cycle bit-exactly.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token text (parse on access).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Wraps a finite `f64` using Rust's shortest round-trip formatting.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values — JSON has no literal for them, and every
    /// value the trace writer emits is validated finite upstream.
    pub fn num_f64(v: f64) -> Json {
        assert!(v.is_finite(), "JSON cannot represent non-finite {v}");
        Json::Num(format!("{v}"))
    }

    /// Wraps a `u64` exactly.
    pub fn num_u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Wraps a `usize` exactly.
    pub fn num_usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integer number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    let digits_start = *pos;
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(format!("expected a number at byte {start}"));
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf8".to_string())?;
    // Validate that the token is a number at all; the raw text is preserved.
    raw.parse::<f64>()
        .map_err(|_| format!("invalid number `{raw}` at byte {start}"))?;
    Ok(Json::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "invalid \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        // Surrogate pairs are not needed by the trace format;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(&b) => {
                // Advance over one multi-byte UTF-8 scalar value (decode at
                // most 4 bytes — validating the whole remaining input here
                // would make parsing quadratic).
                let len = match b {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF7 => 4,
                    _ => return Err(format!("invalid utf8 at byte {}", *pos)),
                };
                let slice = bytes
                    .get(*pos..*pos + len)
                    .ok_or("truncated utf8 sequence")?;
                let s = std::str::from_utf8(slice)
                    .map_err(|_| format!("invalid utf8 at byte {}", *pos))?;
                out.push(s.chars().next().ok_or("unterminated string")?);
                *pos += len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("trace \"x\"\n".into())),
            ("seed".into(), Json::num_u64(u64::MAX)),
            (
                "items".into(),
                Json::Arr(vec![Json::num_f64(0.1), Json::Bool(true), Json::Null]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn u64_seeds_above_2_pow_53_survive() {
        let seed = (1u64 << 63) + 12345;
        let text = Json::num_u64(seed).render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.as_u64(), Some(seed));
    }

    #[test]
    fn f64_shortest_repr_round_trips_bit_exactly() {
        for v in [0.1, 1.0 / 3.0, 4.0e6, 1.2345678901234567e-300, -0.0] {
            let text = Json::num_f64(v).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "value {v}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn whitespace_and_escapes_are_handled() {
        let v = Json::parse(" { \"a\\tb\" : [ 1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(
            v.get("a\tb").unwrap().as_arr().unwrap()[1].as_str(),
            Some("A")
        );
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = Json::parse("{\"a\": [1]}").unwrap();
        assert!(v.get("a").unwrap().as_str().is_none());
        assert!(v.get("a").unwrap().as_f64().is_none());
        assert!(v.get("missing").is_none());
        assert!(Json::Str("x".into()).get("a").is_none());
    }
}
