//! A tiny seeded property-test harness.
//!
//! `proptest` is unavailable in this offline workspace, so the integration
//! tests used to hand-roll "N seeded cases in a loop" machinery. This module
//! extracts that pattern behind one reusable type: a [`QuickCheck`] runs a
//! property over a sequence of deterministically seeded RNGs, and on failure
//! *shrinks by halving* a size bound until the property passes again,
//! reporting the smallest still-failing `(seed, size)` pair in the panic
//! message so the case can be replayed directly with [`QuickCheck::replay`].
//!
//! A property is any `Fn(&mut ChaCha8Rng, u32)` that panics (e.g. via
//! `assert!`) when violated. The `u32` argument is the *size bound*: draw
//! dimensions (task counts, application counts, processor counts) should
//! scale with it so smaller sizes mean simpler counterexamples.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A seeded property-test runner with shrink-by-halving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuickCheck {
    /// Number of cases to draw.
    pub cases: u64,
    /// Base seed; case `c` runs with RNG seed `seed ^ c`.
    pub seed: u64,
    /// Size bound handed to the property for the initial run of every case.
    pub start_size: u32,
}

impl QuickCheck {
    /// A runner with the default shape (24 cases, start size 32).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            cases: 24,
            seed,
            start_size: 32,
        }
    }

    /// Sets the number of cases.
    #[must_use]
    pub fn cases(mut self, cases: u64) -> Self {
        self.cases = cases;
        self
    }

    /// Sets the initial size bound.
    #[must_use]
    pub fn start_size(mut self, start_size: u32) -> Self {
        self.start_size = start_size.max(1);
        self
    }

    /// The RNG seed of one case.
    #[must_use]
    pub fn case_seed(&self, case: u64) -> u64 {
        self.seed ^ case
    }

    /// Runs the property over all cases.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, after shrinking, with a message of
    /// the form `property failed: case 3, seed 0x..., size 4 — replay with
    /// QuickCheck::replay(0x..., 4, property)` followed by the property's own
    /// panic message.
    pub fn run<F>(&self, property: F)
    where
        F: Fn(&mut ChaCha8Rng, u32),
    {
        for case in 0..self.cases {
            let seed = self.case_seed(case);
            let Err(message) = attempt(&property, seed, self.start_size) else {
                continue;
            };
            let (size, message) = shrink(&property, seed, self.start_size, message);
            panic!(
                "property failed: case {case}, seed {seed:#x}, size {size} — replay with \
                 QuickCheck::replay({seed:#x}, {size}, property)\ncaused by: {message}"
            );
        }
    }

    /// Reruns the property once with an explicit seed and size — the
    /// counterexample coordinates printed by a failing [`QuickCheck::run`].
    pub fn replay<F>(seed: u64, size: u32, property: F)
    where
        F: Fn(&mut ChaCha8Rng, u32),
    {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        property(&mut rng, size);
    }
}

/// Runs one case, capturing a panic as the failure message.
fn attempt<F>(property: &F, seed: u64, size: u32) -> Result<(), String>
where
    F: Fn(&mut ChaCha8Rng, u32),
{
    catch_unwind(AssertUnwindSafe(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        property(&mut rng, size);
    }))
    .map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "(non-string panic payload)".to_string()
        }
    })
}

/// Halves the size bound while the property keeps failing; returns the
/// smallest size observed to fail together with its failure message.
fn shrink<F>(property: &F, seed: u64, start_size: u32, message: String) -> (u32, String)
where
    F: Fn(&mut ChaCha8Rng, u32),
{
    let mut failing = (start_size, message);
    let mut size = start_size;
    while size > 1 {
        size /= 2;
        match attempt(property, seed, size) {
            Err(message) => failing = (size, message),
            // The halved case passes: the previous size is the minimal
            // counterexample along the halving chain.
            Ok(()) => break,
        }
    }
    failing
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn passing_properties_run_every_case() {
        let mut seen = Vec::new();
        let qc = QuickCheck::new(0xFEED).cases(5);
        // Record the first draw of every case to check seed distinctness.
        let draws = std::sync::Mutex::new(&mut seen);
        qc.run(|rng, size| {
            assert!(size > 0);
            draws.lock().unwrap().push(rng.gen_range(0..u64::MAX));
        });
        assert_eq!(seen.len(), 5);
        let mut unique = seen.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 5, "every case draws from a distinct stream");
    }

    #[test]
    fn failure_shrinks_to_the_smallest_failing_size() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            QuickCheck::new(7)
                .cases(1)
                .start_size(32)
                .run(|_rng, size| {
                    assert!(size < 4, "too big");
                });
        }));
        let message = match result {
            Ok(()) => panic!("property should have failed"),
            Err(payload) => *payload.downcast::<String>().unwrap(),
        };
        // 32, 16, 8 and 4 fail; 2 passes — the report names size 4 and the
        // reproducing seed (case 0 => seed == base seed).
        assert!(message.contains("size 4"), "got: {message}");
        assert!(message.contains("seed 0x7"), "got: {message}");
        assert!(message.contains("caused by: too big"), "got: {message}");
    }

    #[test]
    fn replay_reproduces_the_case_stream() {
        let qc = QuickCheck::new(0xAB).cases(3);
        let expected = std::sync::Mutex::new(Vec::new());
        qc.run(|rng, _| expected.lock().unwrap().push(rng.gen_range(0..1000u32)));
        for case in 0..3 {
            QuickCheck::replay(qc.case_seed(case), qc.start_size, |rng, _| {
                let v = rng.gen_range(0..1000u32);
                assert_eq!(v, expected.lock().unwrap()[case as usize]);
            });
        }
    }

    #[test]
    fn size_one_failures_are_reported_at_size_one() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            QuickCheck::new(1)
                .cases(1)
                .start_size(8)
                .run(|_rng, _size| {
                    panic!("always fails");
                });
        }));
        let message = match result {
            Ok(()) => panic!("property should have failed"),
            Err(payload) => *payload.downcast::<String>().unwrap(),
        };
        assert!(message.contains("size 1"), "got: {message}");
    }
}
