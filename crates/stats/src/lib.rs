//! # mcsched-stats
//!
//! Statistics for the paired-replication evaluation methodology: the paper's
//! figures are means over many random DAG draws, so asserting its qualitative
//! claims ("WPS is fairer than PS") needs interval estimates, not point
//! estimates. This crate provides the three ingredients, all deterministic
//! from explicit seeds (no `std::time`, no OS entropy — randomness comes from
//! the workspace's vendored `rand_chacha`):
//!
//! * [`Summary`] / [`Samples`] — streaming Welford summaries
//!   (mean/variance/min/max) and raw-sample retention for resampling;
//! * [`bootstrap_mean_ci`] / [`BootstrapConfig`] / [`Ci`] — seeded bootstrap
//!   percentile confidence intervals for means;
//! * [`PairedSamples`] / [`OrderingVerdict`] — common-random-numbers paired
//!   differences between two treatments evaluated on identical scenarios,
//!   with a bootstrap CI on the mean difference and an exact two-sided sign
//!   test; [`PairedSamples::verdict`] condenses both into an
//!   `Ordered { a_below_b, ci, p }` judgement that the paper-conformance test
//!   tier asserts on.
//!
//! The [`quickcheck`] module is a small seeded property-test harness (case
//! generator plus shrink-by-halving) extracted from the integration tests;
//! `proptest` is unavailable offline, and every failure message prints the
//! reproducing seed.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bootstrap;
pub mod paired;
pub mod quickcheck;
pub mod summary;

pub use bootstrap::{bootstrap_mean_ci, BootstrapConfig, Ci};
pub use paired::{OrderingVerdict, PairedSamples};
pub use quickcheck::QuickCheck;
pub use summary::{Samples, Summary};
