//! Streaming summaries and raw-sample sets.

use std::fmt;

/// A streaming univariate summary: count, mean, variance (via Welford's
/// online algorithm), minimum and maximum. Pushing is O(1) and never stores
/// the samples; use [`Samples`] when the raw values are needed later (e.g.
/// for bootstrap resampling).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: usize,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Summarizes a slice in one pass.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Merges another summary into this one (Chan et al. parallel update).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = (self.count + other.count) as f64;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total;
        self.mean += delta * other.count as f64 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (0 when empty).
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.4} ± {:.4} sd (n = {}, range {:.4}..{:.4})",
            self.mean(),
            self.std_dev(),
            self.count(),
            self.min(),
            self.max()
        )
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

/// A sample set that retains the raw values (for resampling and pairing) next
/// to a streaming [`Summary`].
///
/// The mean is computed as the plain in-order sum divided by the count —
/// *not* from the Welford summary — so replacing a bare
/// `sum += x; sum / n` accumulator with a `Samples` is bit-for-bit neutral:
/// the campaign tables stay byte-identical when no statistics are requested.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// An empty sample set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// The raw observations, in insertion order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observation was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// A one-pass summary of the observations, computed on demand (the hot
    /// accumulation path stores only the raw values).
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary::of(&self.values)
    }

    /// Arithmetic mean as the in-order sum over the raw values (0 when
    /// empty); bit-for-bit equal to a naive `sum / n` accumulator.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Seeded bootstrap percentile confidence interval for the mean (see
    /// [`crate::bootstrap_mean_ci`]).
    #[must_use]
    pub fn bootstrap_mean_ci(&self, config: &crate::BootstrapConfig) -> crate::Ci {
        crate::bootstrap_mean_ci(&self.values, config)
    }
}

impl From<Vec<f64>> for Samples {
    fn from(values: Vec<f64>) -> Self {
        Self { values }
    }
}

impl Extend<f64> for Samples {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_closed_forms() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        // Unbiased variance of 1..4 is 5/3.
        assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.std_error() - s.std_dev() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_pushing_everything() {
        let all = [0.5, -1.25, 3.75, 2.0, 9.5, -0.125];
        let (left, right) = all.split_at(2);
        let mut a = Summary::of(left);
        let b = Summary::of(right);
        a.merge(&b);
        let whole = Summary::of(&all);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let s = Summary::of(&[1.0, 2.0]);
        let mut a = s;
        a.merge(&Summary::new());
        assert_eq!(a, s);
        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e, s);
    }

    #[test]
    fn samples_mean_is_the_naive_in_order_sum() {
        // Accumulation order matters in floating point; Samples::mean must
        // reproduce the legacy `sum += x` accumulator exactly.
        let values = [0.1, 0.2, 0.3, 1e15, -1e15, 0.4];
        let naive = values.iter().sum::<f64>() / values.len() as f64;
        let mut s = Samples::new();
        s.extend(values.iter().copied());
        assert_eq!(s.mean(), naive);
        assert_eq!(s.len(), 6);
        assert_eq!(s.values(), &values);
    }

    #[test]
    fn samples_from_vec_agrees_with_push() {
        let mut pushed = Samples::new();
        pushed.push(1.0);
        pushed.push(4.0);
        let converted = Samples::from(vec![1.0, 4.0]);
        assert_eq!(pushed, converted);
        assert!(!converted.is_empty());
        assert_eq!(converted.summary().count(), 2);
    }
}
