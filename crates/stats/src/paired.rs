//! Paired-difference analysis under common random numbers.
//!
//! The evaluation pipeline scores every strategy on *identical* scenario
//! draws (common random numbers), so two strategies' per-scenario metrics
//! form natural pairs and their comparison reduces to the per-pair
//! differences `a_i - b_i`. Pairing cancels the (large) scenario-to-scenario
//! variance, which is the variance-reduction step that makes the paper's
//! mean-of-many-random-DAGs orderings assertable at all.
//!
//! [`PairedSamples`] holds the differences and answers two questions:
//!
//! * *how big is the gap?* — [`PairedSamples::bootstrap_ci`] puts a seeded
//!   bootstrap percentile interval around the mean difference;
//! * *how consistent is the direction?* — [`PairedSamples::sign_test_p`] is
//!   the exact two-sided sign test (a distribution-free Wilcoxon-style
//!   ordering check: under "no ordering", positive and negative differences
//!   are equally likely).
//!
//! [`PairedSamples::verdict`] condenses both into an [`OrderingVerdict`].

use crate::bootstrap::{bootstrap_mean_ci, BootstrapConfig, Ci};
use crate::summary::Summary;
use std::fmt;

/// Per-pair differences `a_i - b_i` between two treatments evaluated on the
/// same scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct PairedSamples {
    diffs: Vec<f64>,
    /// Pairs with `a < b` (negative difference).
    a_wins: usize,
    /// Pairs with `a > b` (positive difference).
    b_wins: usize,
    /// Pairs with `a == b` (dropped by the sign test).
    ties: usize,
}

impl PairedSamples {
    /// Pairs two metric vectors drawn under common random numbers.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths — mismatched lengths
    /// mean the samples were *not* paired, and silently truncating would
    /// fabricate a pairing that never happened.
    #[must_use]
    pub fn of(a: &[f64], b: &[f64]) -> Self {
        assert_eq!(
            a.len(),
            b.len(),
            "paired analysis requires equally many samples per treatment"
        );
        Self::from_diffs(a.iter().zip(b).map(|(x, y)| x - y).collect())
    }

    /// Builds the analysis from precomputed differences `a_i - b_i`.
    #[must_use]
    pub fn from_diffs(diffs: Vec<f64>) -> Self {
        let mut a_wins = 0;
        let mut b_wins = 0;
        let mut ties = 0;
        for &d in &diffs {
            if d < 0.0 {
                a_wins += 1;
            } else if d > 0.0 {
                b_wins += 1;
            } else {
                ties += 1;
            }
        }
        Self {
            diffs,
            a_wins,
            b_wins,
            ties,
        }
    }

    /// The raw differences, in pairing order.
    #[must_use]
    pub fn diffs(&self) -> &[f64] {
        &self.diffs
    }

    /// Number of pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.diffs.len()
    }

    /// Whether no pair was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diffs.is_empty()
    }

    /// Pairs where the first treatment was strictly smaller.
    #[must_use]
    pub fn a_wins(&self) -> usize {
        self.a_wins
    }

    /// Pairs where the second treatment was strictly smaller.
    #[must_use]
    pub fn b_wins(&self) -> usize {
        self.b_wins
    }

    /// Pairs with exactly equal values.
    #[must_use]
    pub fn ties(&self) -> usize {
        self.ties
    }

    /// Mean difference (in-order sum, 0 when empty).
    #[must_use]
    pub fn mean_diff(&self) -> f64 {
        if self.diffs.is_empty() {
            0.0
        } else {
            self.diffs.iter().sum::<f64>() / self.diffs.len() as f64
        }
    }

    /// Streaming summary of the differences.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary::of(&self.diffs)
    }

    /// Seeded bootstrap percentile interval around the mean difference.
    #[must_use]
    pub fn bootstrap_ci(&self, config: &BootstrapConfig) -> Ci {
        bootstrap_mean_ci(&self.diffs, config)
    }

    /// Exact two-sided sign test p-value: the probability, under the null
    /// hypothesis that positive and negative differences are equally likely,
    /// of a split at least as lopsided as the observed one. Ties are dropped,
    /// as is standard; with no untied pair the test is uninformative and
    /// returns 1.
    #[must_use]
    pub fn sign_test_p(&self) -> f64 {
        let n = self.a_wins + self.b_wins;
        if n == 0 {
            return 1.0;
        }
        let k = self.a_wins.min(self.b_wins);
        (2.0 * binomial_cdf_half(n, k)).min(1.0)
    }

    /// The ordering judgement at the configured confidence level: `a` is
    /// declared below `b` (or vice versa) only when the bootstrap interval
    /// around the mean difference excludes zero *and* the sign test rejects
    /// "no consistent direction" at `1 - level`; otherwise the comparison is
    /// [`OrderingVerdict::Inconclusive`] and carries the measured interval.
    #[must_use]
    pub fn verdict(&self, config: &BootstrapConfig) -> OrderingVerdict {
        let ci = self.bootstrap_ci(config);
        let p = self.sign_test_p();
        let alpha = 1.0 - config.level;
        if ci.below_zero() && p < alpha && self.a_wins > self.b_wins {
            OrderingVerdict::Ordered {
                a_below_b: true,
                ci,
                p,
            }
        } else if ci.above_zero() && p < alpha && self.b_wins > self.a_wins {
            OrderingVerdict::Ordered {
                a_below_b: false,
                ci,
                p,
            }
        } else {
            OrderingVerdict::Inconclusive { ci, p }
        }
    }
}

/// Outcome of a paired ordering comparison between treatments `a` and `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OrderingVerdict {
    /// One treatment is consistently below the other: the confidence
    /// interval around the mean difference excludes zero and the sign test
    /// agrees on the direction.
    Ordered {
        /// `true` when `a` is below `b` (negative differences), `false` for
        /// the opposite ordering.
        a_below_b: bool,
        /// Bootstrap interval around the mean difference `a - b`.
        ci: Ci,
        /// Two-sided sign-test p-value.
        p: f64,
    },
    /// The data does not support a strict ordering at the requested level;
    /// the measured interval quantifies how large a gap is still compatible
    /// with the samples.
    Inconclusive {
        /// Bootstrap interval around the mean difference `a - b`.
        ci: Ci,
        /// Two-sided sign-test p-value.
        p: f64,
    },
}

impl OrderingVerdict {
    /// The bootstrap interval of the comparison, whatever the verdict.
    #[must_use]
    pub fn ci(&self) -> Ci {
        match *self {
            OrderingVerdict::Ordered { ci, .. } | OrderingVerdict::Inconclusive { ci, .. } => ci,
        }
    }

    /// The sign-test p-value of the comparison, whatever the verdict.
    #[must_use]
    pub fn p(&self) -> f64 {
        match *self {
            OrderingVerdict::Ordered { p, .. } | OrderingVerdict::Inconclusive { p, .. } => p,
        }
    }

    /// Whether the verdict asserts `a < b`.
    #[must_use]
    pub fn is_a_below_b(&self) -> bool {
        matches!(
            self,
            OrderingVerdict::Ordered {
                a_below_b: true,
                ..
            }
        )
    }
}

impl fmt::Display for OrderingVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderingVerdict::Ordered { a_below_b, ci, p } => write!(
                f,
                "ordered: {} (diff CI {ci}, sign-test p = {p:.4})",
                if *a_below_b { "a < b" } else { "b < a" }
            ),
            OrderingVerdict::Inconclusive { ci, p } => {
                write!(f, "inconclusive (diff CI {ci}, sign-test p = {p:.4})")
            }
        }
    }
}

/// `P(X <= k)` for `X ~ Binomial(n, 1/2)`, computed in log space so large
/// `n` neither under- nor overflows.
fn binomial_cdf_half(n: usize, k: usize) -> f64 {
    // ln C(n, i) built incrementally: ln C(n, 0) = 0,
    // ln C(n, i) = ln C(n, i-1) + ln(n - i + 1) - ln(i).
    let ln_half_n = -(n as f64) * std::f64::consts::LN_2;
    let mut ln_c = 0.0f64;
    let mut log_terms = Vec::with_capacity(k + 1);
    for i in 0..=k {
        if i > 0 {
            ln_c += ((n - i + 1) as f64).ln() - (i as f64).ln();
        }
        log_terms.push(ln_c + ln_half_n);
    }
    // Log-sum-exp over the terms.
    let max = log_terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return 0.0;
    }
    let sum: f64 = log_terms.iter().map(|&t| (t - max).exp()).sum();
    (max + sum.ln()).exp().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairing_counts_wins_and_ties() {
        let p = PairedSamples::of(&[1.0, 2.0, 3.0, 4.0], &[2.0, 2.0, 1.0, 5.0]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.a_wins(), 2);
        assert_eq!(p.b_wins(), 1);
        assert_eq!(p.ties(), 1);
        assert_eq!(p.diffs(), &[-1.0, 0.0, 2.0, -1.0]);
        assert!((p.mean_diff() - 0.0).abs() < 1e-12);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "equally many samples")]
    fn mismatched_lengths_panic() {
        let _ = PairedSamples::of(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn sign_test_matches_exact_binomial_values() {
        // 5 negative / 0 positive: p = 2 * (1/2)^5 = 0.0625.
        let p = PairedSamples::from_diffs(vec![-1.0; 5]);
        assert!((p.sign_test_p() - 0.0625).abs() < 1e-12);
        // 3 vs 3: perfectly balanced, p = 2 * P(X <= 3) capped at 1.
        let balanced = PairedSamples::from_diffs(vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0]);
        assert_eq!(balanced.sign_test_p(), 1.0);
        // All ties: uninformative.
        let ties = PairedSamples::from_diffs(vec![0.0; 10]);
        assert_eq!(ties.sign_test_p(), 1.0);
        assert!(!ties.is_empty() && ties.ties() == 10);
        // Empty: uninformative.
        assert_eq!(PairedSamples::from_diffs(vec![]).sign_test_p(), 1.0);
    }

    #[test]
    fn sign_test_survives_large_n() {
        // 1000 pairs, 400 positive: p must be finite, tiny but nonzero.
        let mut diffs = vec![-1.0; 600];
        diffs.extend(vec![1.0; 400]);
        let p = PairedSamples::from_diffs(diffs).sign_test_p();
        assert!(p > 0.0 && p < 1e-9, "p = {p}");
    }

    #[test]
    fn consistent_ordering_yields_an_ordered_verdict() {
        // a is below b by a clear margin on every pair (with jitter).
        let diffs: Vec<f64> = (0..40).map(|i| -0.5 - 0.01 * (i % 7) as f64).collect();
        let verdict = PairedSamples::from_diffs(diffs).verdict(&BootstrapConfig::seeded(1));
        match verdict {
            OrderingVerdict::Ordered { a_below_b, ci, p } => {
                assert!(a_below_b);
                assert!(verdict.is_a_below_b());
                assert!(ci.below_zero());
                assert!(p < 0.05);
            }
            OrderingVerdict::Inconclusive { .. } => panic!("expected an ordering: {verdict}"),
        }
    }

    #[test]
    fn noisy_balanced_data_is_inconclusive() {
        let diffs: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 } * (1.0 + (i % 5) as f64))
            .collect();
        let verdict = PairedSamples::from_diffs(diffs).verdict(&BootstrapConfig::seeded(2));
        assert!(
            matches!(verdict, OrderingVerdict::Inconclusive { .. }),
            "balanced differences must not order: {verdict}"
        );
        assert!(verdict.ci().contains(0.0));
        assert!(!verdict.is_a_below_b());
    }

    #[test]
    fn verdict_is_deterministic() {
        let diffs: Vec<f64> = (0..30).map(|i| ((i * 13) % 11) as f64 - 5.0).collect();
        let samples = PairedSamples::from_diffs(diffs);
        let cfg = BootstrapConfig::seeded(0xC1);
        assert_eq!(samples.verdict(&cfg), samples.verdict(&cfg));
    }

    #[test]
    fn binomial_cdf_sanity() {
        // P(X <= 2 | n = 4) = (1 + 4 + 6) / 16.
        assert!((binomial_cdf_half(4, 2) - 11.0 / 16.0).abs() < 1e-12);
        // Full range sums to 1.
        assert!((binomial_cdf_half(10, 10) - 1.0).abs() < 1e-12);
    }
}
