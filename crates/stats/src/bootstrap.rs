//! Seeded bootstrap percentile confidence intervals.
//!
//! The evaluation's per-cell samples (one unfairness value per scenario) are
//! small, skewed and of unknown distribution, so normal-theory intervals are
//! a poor fit; the bootstrap percentile method only assumes exchangeability.
//! All resampling is driven by an explicit [`BootstrapConfig::seed`] through
//! the vendored `ChaCha8Rng`, so a reported interval is reproducible
//! bit-for-bit from the configuration that produced it.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Configuration of a bootstrap resampling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapConfig {
    /// Number of bootstrap resamples (2000 by default: percentile intervals
    /// stabilize in the low thousands).
    pub resamples: usize,
    /// Confidence level in (0, 1), e.g. 0.95.
    pub level: f64,
    /// Seed of the resampling RNG; equal configurations produce equal
    /// intervals.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            resamples: 2000,
            level: 0.95,
            seed: 0x0B0075,
        }
    }
}

impl BootstrapConfig {
    /// A default-shaped configuration with an explicit seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Returns the configuration with the given confidence level.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < level < 1`.
    #[must_use]
    pub fn with_level(mut self, level: f64) -> Self {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must lie in (0, 1), got {level}"
        );
        self.level = level;
        self
    }

    /// Derives a sub-configuration whose seed mixes in a label, so that every
    /// cell of a report resamples from an independent, reproducible stream.
    #[must_use]
    pub fn derive(&self, label: &str) -> Self {
        // FNV-1a over the label, folded into the base seed through SplitMix64
        // so similar labels do not produce correlated streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut z = self.seed ^ h;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self {
            seed: z ^ (z >> 31),
            ..*self
        }
    }
}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ci {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level in (0, 1).
    pub level: f64,
}

impl Ci {
    /// Whether `x` lies inside the interval (bounds inclusive).
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether the two intervals share at least one point.
    #[must_use]
    pub fn overlaps(&self, other: &Ci) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Half the interval width.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// The interval midpoint.
    #[must_use]
    pub fn midpoint(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    /// Whether the whole interval lies strictly below zero.
    #[must_use]
    pub fn below_zero(&self) -> bool {
        self.hi < 0.0
    }

    /// Whether the whole interval lies strictly above zero.
    #[must_use]
    pub fn above_zero(&self) -> bool {
        self.lo > 0.0
    }
}

impl fmt::Display for Ci {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.4}, {:.4}] ({:.0}%)",
            self.lo,
            self.hi,
            self.level * 100.0
        )
    }
}

/// Bootstrap percentile confidence interval for the mean of `values`.
///
/// Draws [`BootstrapConfig::resamples`] resamples with replacement, computes
/// each resample's mean, and returns the empirical `alpha/2` and
/// `1 - alpha/2` percentiles. Degenerate inputs collapse gracefully: an empty
/// slice yields `[0, 0]` and a single value `[v, v]`.
#[must_use]
pub fn bootstrap_mean_ci(values: &[f64], config: &BootstrapConfig) -> Ci {
    assert!(
        config.level > 0.0 && config.level < 1.0,
        "confidence level must lie in (0, 1), got {}",
        config.level
    );
    let n = values.len();
    if n == 0 {
        return Ci {
            lo: 0.0,
            hi: 0.0,
            level: config.level,
        };
    }
    if n == 1 {
        return Ci {
            lo: values[0],
            hi: values[0],
            level: config.level,
        };
    }
    let resamples = config.resamples.max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += values[rng.gen_range(0..n)];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(f64::total_cmp);
    let alpha = 1.0 - config.level;
    Ci {
        lo: percentile(&means, alpha / 2.0),
        hi: percentile(&means, 1.0 - alpha / 2.0),
        level: config.level,
    }
}

/// Empirical percentile of a sorted slice with linear interpolation.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let idx = pos.floor() as usize;
    let frac = pos - idx as f64;
    if idx + 1 < sorted.len() {
        sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac
    } else {
        sorted[sorted.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_is_deterministic_per_seed() {
        let values: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        let cfg = BootstrapConfig::seeded(42);
        let a = bootstrap_mean_ci(&values, &cfg);
        let b = bootstrap_mean_ci(&values, &cfg);
        assert_eq!(a, b);
        let c = bootstrap_mean_ci(&values, &BootstrapConfig::seeded(43));
        assert_ne!(a, c, "a different seed resamples differently");
    }

    #[test]
    fn interval_brackets_the_sample_mean() {
        let values: Vec<f64> = (0..200).map(|i| f64::from(i % 17)).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let ci = bootstrap_mean_ci(&values, &BootstrapConfig::seeded(7));
        assert!(ci.contains(mean), "{ci} should contain {mean}");
        assert!(ci.half_width() > 0.0);
        assert!(ci.half_width() < 2.0, "200 samples pin the mean tightly");
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let values: Vec<f64> = (0..100).map(|i| ((i * 37) % 23) as f64).collect();
        let narrow = bootstrap_mean_ci(&values, &BootstrapConfig::seeded(5).with_level(0.80));
        let wide = bootstrap_mean_ci(&values, &BootstrapConfig::seeded(5).with_level(0.99));
        assert!(wide.half_width() > narrow.half_width());
        assert!(wide.lo <= narrow.lo && narrow.hi <= wide.hi);
    }

    #[test]
    fn degenerate_inputs_collapse() {
        let cfg = BootstrapConfig::default();
        let empty = bootstrap_mean_ci(&[], &cfg);
        assert_eq!((empty.lo, empty.hi), (0.0, 0.0));
        let single = bootstrap_mean_ci(&[3.5], &cfg);
        assert_eq!((single.lo, single.hi), (3.5, 3.5));
        let constant = bootstrap_mean_ci(&[2.0; 30], &cfg);
        assert_eq!((constant.lo, constant.hi), (2.0, 2.0));
    }

    #[test]
    fn derived_configs_differ_by_label_but_are_stable() {
        let base = BootstrapConfig::seeded(0x5EED);
        let a = base.derive("unfairness/8/WPS-work");
        let b = base.derive("unfairness/8/PS-work");
        assert_ne!(a.seed, b.seed);
        assert_eq!(a, base.derive("unfairness/8/WPS-work"));
        assert_eq!(a.resamples, base.resamples);
        assert_eq!(a.level, base.level);
    }

    #[test]
    fn overlap_and_sign_helpers() {
        let a = Ci {
            lo: -0.2,
            hi: -0.1,
            level: 0.95,
        };
        let b = Ci {
            lo: -0.15,
            hi: 0.3,
            level: 0.95,
        };
        assert!(a.overlaps(&b) && b.overlaps(&a));
        assert!(a.below_zero() && !a.above_zero());
        assert!(!b.below_zero() && !b.above_zero());
        let c = Ci {
            lo: 0.5,
            hi: 0.6,
            level: 0.95,
        };
        assert!(!a.overlaps(&c));
        assert!(c.above_zero());
        assert!((c.midpoint() - 0.55).abs() < 1e-12);
    }
}
