//! # mcsched-platform
//!
//! Heterogeneous multi-cluster platform model used by the concurrent PTG
//! scheduler. A [`Platform`] is a federation of [`Cluster`]s located in a
//! single site (LAN latencies), each cluster being a homogeneous set of
//! processors characterised by a per-processor speed in GFlop/s.
//!
//! The model follows Section 2 of N'Takpé & Suter, *Concurrent Scheduling of
//! Parallel Task Graphs on Multi-Clusters Using Constrained Resource
//! Allocations* (INRIA RR-6774 / IPDPS 2009):
//!
//! * each platform consists of `c` clusters, cluster `C_k` containing `p_k`
//!   identical processors of speed `s_k` (flop/s);
//! * clusters are interconnected either through one **shared switch**
//!   (Rennes, Lille) or through **per-cluster switches** joined by a backbone
//!   (Nancy, Sophia), which yields different contention conditions;
//! * the heterogeneity of a platform is the ratio between the speeds of its
//!   fastest and slowest processors.
//!
//! The exact Grid'5000 subsets of Table 1 of the paper are available from the
//! [`grid5000`] module.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod builder;
pub mod cluster;
pub mod error;
pub mod grid5000;
pub mod network;
pub mod platform;
pub mod procset;

pub use builder::PlatformBuilder;
pub use cluster::{Cluster, ClusterId, ProcId};
pub use error::PlatformError;
pub use network::{LinkSpec, NetworkTopology};
pub use platform::Platform;
pub use procset::ProcSet;

/// One gigaflop per second, expressed in flop/s.
pub const GFLOPS: f64 = 1.0e9;

/// One gigabit per second expressed in bytes/s (network bandwidth unit).
pub const GBIT_PER_S: f64 = 1.0e9 / 8.0;
