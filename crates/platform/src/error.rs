//! Error types for platform construction and validation.

use std::fmt;

/// Errors raised while building or validating a [`crate::Platform`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// A platform must contain at least one cluster.
    NoClusters,
    /// A cluster must contain at least one processor.
    EmptyCluster {
        /// Name of the offending cluster.
        name: String,
    },
    /// Processor speed must be strictly positive.
    NonPositiveSpeed {
        /// Name of the offending cluster.
        name: String,
        /// The offending speed value (flop/s).
        speed: f64,
    },
    /// Link bandwidth must be strictly positive.
    NonPositiveBandwidth {
        /// Name of the offending cluster.
        name: String,
        /// The offending bandwidth value (bytes/s).
        bandwidth: f64,
    },
    /// Link latency must be non-negative and finite.
    InvalidLatency {
        /// Name of the offending cluster.
        name: String,
        /// The offending latency value (seconds).
        latency: f64,
    },
    /// Two clusters share the same name.
    DuplicateClusterName {
        /// The duplicated name.
        name: String,
    },
    /// A cluster index is out of bounds for this platform.
    UnknownCluster {
        /// The offending index.
        index: usize,
        /// Number of clusters in the platform.
        clusters: usize,
    },
    /// A processor index is out of bounds for its cluster.
    UnknownProcessor {
        /// The cluster index.
        cluster: usize,
        /// The offending processor index.
        proc: usize,
        /// Number of processors in that cluster.
        procs: usize,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NoClusters => write!(f, "a platform must contain at least one cluster"),
            PlatformError::EmptyCluster { name } => {
                write!(f, "cluster `{name}` has no processors")
            }
            PlatformError::NonPositiveSpeed { name, speed } => {
                write!(f, "cluster `{name}` has non-positive speed {speed} flop/s")
            }
            PlatformError::NonPositiveBandwidth { name, bandwidth } => {
                write!(
                    f,
                    "cluster `{name}` has non-positive link bandwidth {bandwidth} B/s"
                )
            }
            PlatformError::InvalidLatency { name, latency } => {
                write!(f, "cluster `{name}` has invalid link latency {latency} s")
            }
            PlatformError::DuplicateClusterName { name } => {
                write!(f, "cluster name `{name}` is used more than once")
            }
            PlatformError::UnknownCluster { index, clusters } => {
                write!(
                    f,
                    "cluster index {index} out of bounds (platform has {clusters} clusters)"
                )
            }
            PlatformError::UnknownProcessor {
                cluster,
                proc,
                procs,
            } => write!(
                f,
                "processor index {proc} out of bounds for cluster {cluster} ({procs} processors)"
            ),
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cluster_name() {
        let err = PlatformError::EmptyCluster {
            name: "grelon".into(),
        };
        assert!(err.to_string().contains("grelon"));
    }

    #[test]
    fn display_no_clusters() {
        assert!(PlatformError::NoClusters
            .to_string()
            .contains("at least one"));
    }

    #[test]
    fn display_unknown_processor() {
        let err = PlatformError::UnknownProcessor {
            cluster: 1,
            proc: 99,
            procs: 20,
        };
        let s = err.to_string();
        assert!(s.contains("99") && s.contains("20"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<PlatformError>();
    }
}
