//! Fluent builder for [`Platform`] instances.

use crate::cluster::Cluster;
use crate::error::PlatformError;
use crate::network::{LinkSpec, NetworkTopology};
use crate::platform::Platform;

/// Incrementally assembles a [`Platform`].
///
/// ```
/// use mcsched_platform::{PlatformBuilder, NetworkTopology};
///
/// let platform = PlatformBuilder::new("my-site")
///     .topology(NetworkTopology::shared_gigabit())
///     .cluster("alpha", 32, 3.2)
///     .cluster("beta", 64, 2.4)
///     .build()
///     .unwrap();
/// assert_eq!(platform.total_procs(), 96);
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    name: String,
    clusters: Vec<Cluster>,
    topology: NetworkTopology,
    default_link: LinkSpec,
}

impl PlatformBuilder {
    /// Starts a new builder for a platform with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            clusters: Vec::new(),
            topology: NetworkTopology::shared_gigabit(),
            default_link: LinkSpec::gigabit(),
        }
    }

    /// Sets the site topology (shared switch or per-cluster switches).
    pub fn topology(mut self, topology: NetworkTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the default uplink used by clusters added afterwards with
    /// [`PlatformBuilder::cluster`].
    pub fn default_link(mut self, link: LinkSpec) -> Self {
        self.default_link = link;
        self
    }

    /// Adds a cluster with `num_procs` processors at `gflops` GFlop/s using
    /// the current default uplink.
    pub fn cluster(mut self, name: impl Into<String>, num_procs: usize, gflops: f64) -> Self {
        self.clusters.push(
            Cluster::from_gflops(name, num_procs, gflops)
                .with_link(self.default_link.bandwidth, self.default_link.latency),
        );
        self
    }

    /// Adds an already-constructed [`Cluster`].
    pub fn cluster_spec(mut self, cluster: Cluster) -> Self {
        self.clusters.push(cluster);
        self
    }

    /// Number of clusters added so far.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether no cluster has been added yet.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Validates and builds the platform.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`Platform::new`].
    pub fn build(self) -> Result<Platform, PlatformError> {
        Platform::new(self.name, self.clusters, self.topology)
    }
}

/// Builds a homogeneous single-cluster platform, convenient for tests and for
/// the reference-cluster reasoning of HCPA-style allocation.
pub fn homogeneous(name: impl Into<String>, num_procs: usize, gflops: f64) -> Platform {
    PlatformBuilder::new(name)
        .cluster("c0", num_procs, gflops)
        .build()
        .expect("homogeneous platform parameters are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_clusters() {
        let p = PlatformBuilder::new("site")
            .cluster("a", 8, 2.0)
            .cluster("b", 16, 3.0)
            .build()
            .unwrap();
        assert_eq!(p.num_clusters(), 2);
        assert_eq!(p.total_procs(), 24);
    }

    #[test]
    fn default_link_is_applied() {
        let p = PlatformBuilder::new("site")
            .default_link(LinkSpec::new(5.0e8, 2.0e-4))
            .cluster("a", 8, 2.0)
            .build()
            .unwrap();
        assert_eq!(p.clusters()[0].link_bandwidth(), 5.0e8);
        assert_eq!(p.clusters()[0].link_latency(), 2.0e-4);
    }

    #[test]
    fn empty_builder_fails() {
        assert!(PlatformBuilder::new("site").build().is_err());
    }

    #[test]
    fn homogeneous_helper() {
        let p = homogeneous("h", 42, 1.5);
        assert_eq!(p.num_clusters(), 1);
        assert_eq!(p.total_procs(), 42);
        assert!((p.heterogeneity()).abs() < 1e-12);
    }

    #[test]
    fn len_and_is_empty() {
        let b = PlatformBuilder::new("x");
        assert!(b.is_empty());
        let b = b.cluster("a", 1, 1.0);
        assert_eq!(b.len(), 1);
    }
}
