//! Sets of processors within a single cluster.
//!
//! Data-parallel tasks are always mapped onto processors belonging to a
//! single cluster (mixing clusters inside one data-parallel task would expose
//! it to WAN-ish heterogeneity the moldable-task model does not capture).
//! A [`ProcSet`] therefore records the cluster and the indices of the
//! processors reserved inside that cluster.

use crate::cluster::{ClusterId, ProcId};
use serde::{Deserialize, Serialize};

/// A set of processors inside a single cluster.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcSet {
    cluster: ClusterId,
    procs: Vec<ProcId>,
}

impl ProcSet {
    /// Builds a processor set from a cluster index and explicit processor
    /// indices. The indices are sorted and deduplicated.
    pub fn new(cluster: ClusterId, mut procs: Vec<ProcId>) -> Self {
        procs.sort_unstable();
        procs.dedup();
        Self { cluster, procs }
    }

    /// Builds a processor set covering `count` processors starting at index
    /// `first` in cluster `cluster`.
    pub fn contiguous(cluster: ClusterId, first: ProcId, count: usize) -> Self {
        Self {
            cluster,
            procs: (first..first + count).collect(),
        }
    }

    /// The empty processor set on a given cluster.
    pub fn empty(cluster: ClusterId) -> Self {
        Self {
            cluster,
            procs: Vec::new(),
        }
    }

    /// Cluster the processors belong to.
    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }

    /// Number of processors in the set.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Iterates over the processor indices (sorted ascending).
    pub fn iter(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.procs.iter().copied()
    }

    /// Slice view of the processor indices (sorted ascending).
    pub fn procs(&self) -> &[ProcId] {
        &self.procs
    }

    /// Whether the set contains processor `p`.
    pub fn contains(&self, p: ProcId) -> bool {
        self.procs.binary_search(&p).is_ok()
    }

    /// Number of processors shared with another set (0 when on different
    /// clusters).
    pub fn overlap(&self, other: &ProcSet) -> usize {
        if self.cluster != other.cluster {
            return 0;
        }
        // Both are sorted: linear merge.
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < self.procs.len() && j < other.procs.len() {
            match self.procs[i].cmp(&other.procs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Whether the two sets share at least one processor.
    pub fn intersects(&self, other: &ProcSet) -> bool {
        self.overlap(other) > 0
    }

    /// Keeps only the first `count` processors of the set (used by the
    /// allocation-packing mechanism when shrinking an allocation).
    pub fn truncated(&self, count: usize) -> Self {
        Self {
            cluster: self.cluster,
            procs: self.procs.iter().copied().take(count).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_covers_range() {
        let s = ProcSet::contiguous(2, 5, 4);
        assert_eq!(s.cluster(), 2);
        assert_eq!(s.procs(), &[5, 6, 7, 8]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn new_sorts_and_dedups() {
        let s = ProcSet::new(0, vec![3, 1, 3, 2]);
        assert_eq!(s.procs(), &[1, 2, 3]);
    }

    #[test]
    fn overlap_counts_common_procs() {
        let a = ProcSet::new(0, vec![0, 1, 2, 3]);
        let b = ProcSet::new(0, vec![2, 3, 4]);
        assert_eq!(a.overlap(&b), 2);
        assert!(a.intersects(&b));
    }

    #[test]
    fn overlap_across_clusters_is_zero() {
        let a = ProcSet::new(0, vec![0, 1]);
        let b = ProcSet::new(1, vec![0, 1]);
        assert_eq!(a.overlap(&b), 0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn truncated_keeps_prefix() {
        let a = ProcSet::new(0, vec![4, 7, 9, 12]);
        let t = a.truncated(2);
        assert_eq!(t.procs(), &[4, 7]);
        assert_eq!(a.len(), 4, "original is untouched");
    }

    #[test]
    fn contains_uses_sorted_search() {
        let a = ProcSet::new(1, vec![10, 20, 30]);
        assert!(a.contains(20));
        assert!(!a.contains(25));
    }

    #[test]
    fn empty_set() {
        let e = ProcSet::empty(3);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.cluster(), 3);
    }
}
