//! Site-level interconnection topology.
//!
//! The paper distinguishes two interconnection styles among its Grid'5000
//! subsets: in Rennes and Lille all clusters are plugged into **one shared
//! switch**, while in Nancy and Sophia **each cluster has its own switch**
//! and the switches are joined by a backbone. The distinction matters because
//! it "leads to different contention conditions": with a shared switch every
//! inter-cluster transfer of the site competes for the same switching fabric,
//! whereas per-cluster switches only share the backbone.

use serde::{Deserialize, Serialize};

/// A point-to-point link specification (bandwidth in bytes/s, latency in s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Latency in seconds.
    pub latency: f64,
}

impl LinkSpec {
    /// Creates a new link specification.
    pub fn new(bandwidth: f64, latency: f64) -> Self {
        Self { bandwidth, latency }
    }

    /// A 1 Gbit/s LAN link with 100 µs latency (Grid'5000-like default).
    pub fn gigabit() -> Self {
        Self::new(crate::GBIT_PER_S, 1.0e-4)
    }

    /// A 10 Gbit/s backbone link with 100 µs latency.
    pub fn ten_gigabit() -> Self {
        Self::new(10.0 * crate::GBIT_PER_S, 1.0e-4)
    }

    /// Time in seconds to transfer `bytes` over this link, ignoring contention.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            0.0
        } else {
            self.latency + bytes / self.bandwidth
        }
    }
}

/// How the clusters of a site are interconnected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetworkTopology {
    /// All clusters are connected to a single shared switch
    /// (Rennes and Lille in the paper). Every inter-cluster transfer crosses
    /// the shared switch, whose fabric bandwidth is shared among all ongoing
    /// transfers of the site.
    SharedSwitch {
        /// Switching fabric specification shared by all transfers.
        switch: LinkSpec,
    },
    /// Each cluster has its own switch; the switches are connected through a
    /// backbone (Nancy and Sophia in the paper). Transfers between two
    /// clusters cross both cluster uplinks and the backbone; only the
    /// backbone is shared site-wide.
    PerClusterSwitch {
        /// Backbone specification connecting the per-cluster switches.
        backbone: LinkSpec,
    },
}

impl NetworkTopology {
    /// A shared gigabit switch.
    pub fn shared_gigabit() -> Self {
        NetworkTopology::SharedSwitch {
            switch: LinkSpec::gigabit(),
        }
    }

    /// Per-cluster switches joined by a 10 Gbit/s backbone.
    pub fn per_cluster_ten_gigabit() -> Self {
        NetworkTopology::PerClusterSwitch {
            backbone: LinkSpec::ten_gigabit(),
        }
    }

    /// Returns `true` if all clusters share a single switch.
    pub fn is_shared(&self) -> bool {
        matches!(self, NetworkTopology::SharedSwitch { .. })
    }

    /// The link specification of the shared element of the topology
    /// (the switch fabric or the backbone).
    pub fn shared_link(&self) -> LinkSpec {
        match self {
            NetworkTopology::SharedSwitch { switch } => *switch,
            NetworkTopology::PerClusterSwitch { backbone } => *backbone,
        }
    }

    /// Latency incurred by a transfer between two *different* clusters of the
    /// site, ignoring contention: one hop through the shared switch or two
    /// uplink hops plus the backbone.
    pub fn inter_cluster_latency(&self, uplink_a: f64, uplink_b: f64) -> f64 {
        match self {
            NetworkTopology::SharedSwitch { switch } => uplink_a + switch.latency + uplink_b,
            NetworkTopology::PerClusterSwitch { backbone } => {
                uplink_a + backbone.latency + uplink_b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_transfer_time() {
        let l = LinkSpec::gigabit();
        // 125 MB over 125 MB/s = 1s + latency
        let t = l.transfer_time(1.25e8);
        assert!((t - (1.0 + 1.0e-4)).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(LinkSpec::gigabit().transfer_time(0.0), 0.0);
        assert_eq!(LinkSpec::gigabit().transfer_time(-3.0), 0.0);
    }

    #[test]
    fn shared_flag() {
        assert!(NetworkTopology::shared_gigabit().is_shared());
        assert!(!NetworkTopology::per_cluster_ten_gigabit().is_shared());
    }

    #[test]
    fn backbone_is_faster_than_switch_default() {
        let shared = NetworkTopology::shared_gigabit().shared_link();
        let backbone = NetworkTopology::per_cluster_ten_gigabit().shared_link();
        assert!(backbone.bandwidth > shared.bandwidth);
    }

    #[test]
    fn inter_cluster_latency_sums_hops() {
        let t = NetworkTopology::shared_gigabit();
        let lat = t.inter_cluster_latency(1e-4, 1e-4);
        assert!((lat - 3e-4).abs() < 1e-12);
    }
}
