//! Homogeneous cluster description.

use serde::{Deserialize, Serialize};

/// Index of a cluster within a [`crate::Platform`].
pub type ClusterId = usize;

/// Index of a processor within a cluster.
pub type ProcId = usize;

/// A homogeneous cluster: `num_procs` identical processors computing at
/// `speed` flop/s, attached to the site network through a link of given
/// bandwidth and latency.
///
/// The speed is stored in flop/s (not GFlop/s) so that execution times can be
/// obtained directly as `flops / speed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    name: String,
    num_procs: usize,
    speed: f64,
    link_bandwidth: f64,
    link_latency: f64,
}

impl Cluster {
    /// Creates a new cluster description.
    ///
    /// * `name` — human readable identifier (e.g. `"grelon"`).
    /// * `num_procs` — number of identical processors.
    /// * `speed` — per-processor speed in flop/s.
    /// * `link_bandwidth` — bandwidth of the link connecting the cluster to
    ///   its switch, in bytes/s.
    /// * `link_latency` — latency of that link in seconds.
    pub fn new(
        name: impl Into<String>,
        num_procs: usize,
        speed: f64,
        link_bandwidth: f64,
        link_latency: f64,
    ) -> Self {
        Self {
            name: name.into(),
            num_procs,
            speed,
            link_bandwidth,
            link_latency,
        }
    }

    /// Convenience constructor taking the speed in GFlop/s as printed in
    /// Table 1 of the paper, with default Grid'5000-like gigabit links.
    pub fn from_gflops(name: impl Into<String>, num_procs: usize, gflops: f64) -> Self {
        Self::new(
            name,
            num_procs,
            gflops * crate::GFLOPS,
            crate::GBIT_PER_S,
            1.0e-4,
        )
    }

    /// Cluster name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processors in the cluster.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// Per-processor speed in flop/s.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Per-processor speed in GFlop/s (as printed in the paper's Table 1).
    pub fn speed_gflops(&self) -> f64 {
        self.speed / crate::GFLOPS
    }

    /// Aggregate processing power of the cluster in flop/s
    /// (`num_procs * speed`).
    pub fn total_power(&self) -> f64 {
        self.num_procs as f64 * self.speed
    }

    /// Bandwidth of the cluster's uplink in bytes/s.
    pub fn link_bandwidth(&self) -> f64 {
        self.link_bandwidth
    }

    /// Latency of the cluster's uplink in seconds.
    pub fn link_latency(&self) -> f64 {
        self.link_latency
    }

    /// Returns a copy of this cluster with a different uplink specification.
    pub fn with_link(mut self, bandwidth: f64, latency: f64) -> Self {
        self.link_bandwidth = bandwidth;
        self.link_latency = latency;
        self
    }

    /// Time (in seconds) to execute `flops` floating point operations on a
    /// single processor of this cluster.
    pub fn sequential_time(&self, flops: f64) -> f64 {
        flops / self.speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gflops_roundtrip() {
        let c = Cluster::from_gflops("grelon", 120, 3.185);
        assert_eq!(c.num_procs(), 120);
        assert!((c.speed_gflops() - 3.185).abs() < 1e-12);
        assert!((c.speed() - 3.185e9).abs() < 1.0);
    }

    #[test]
    fn total_power_is_procs_times_speed() {
        let c = Cluster::from_gflops("chti", 20, 4.311);
        assert!((c.total_power() - 20.0 * 4.311e9).abs() < 1.0);
    }

    #[test]
    fn sequential_time_scales_with_speed() {
        let slow = Cluster::from_gflops("slow", 1, 1.0);
        let fast = Cluster::from_gflops("fast", 1, 4.0);
        let flops = 8.0e9;
        assert!((slow.sequential_time(flops) - 8.0).abs() < 1e-9);
        assert!((fast.sequential_time(flops) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn with_link_overrides_network() {
        let c = Cluster::from_gflops("azur", 74, 3.258).with_link(2.5e8, 5e-5);
        assert_eq!(c.link_bandwidth(), 2.5e8);
        assert_eq!(c.link_latency(), 5e-5);
    }

    #[test]
    fn name_is_preserved() {
        let c = Cluster::from_gflops("paraquad", 66, 4.603);
        assert_eq!(c.name(), "paraquad");
    }
}
