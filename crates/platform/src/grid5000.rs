//! The four Grid'5000 multi-cluster subsets of Table 1 of the paper.
//!
//! | Site   | Cluster  | #proc | GFlop/s | Topology            |
//! |--------|----------|-------|---------|---------------------|
//! | Lille  | Chuque   | 53    | 3.647   | shared switch       |
//! | Lille  | Chti     | 20    | 4.311   |                     |
//! | Lille  | Chicon   | 26    | 4.384   |                     |
//! | Nancy  | Grillon  | 47    | 3.379   | per-cluster switch  |
//! | Nancy  | Grelon   | 120   | 3.185   |                     |
//! | Rennes | Parasol  | 64    | 3.573   | shared switch       |
//! | Rennes | Paravent | 99    | 3.364   |                     |
//! | Rennes | Paraquad | 66    | 4.603   |                     |
//! | Sophia | Azur     | 74    | 3.258   | per-cluster switch  |
//! | Sophia | Helios   | 56    | 3.675   |                     |
//! | Sophia | Sol      | 50    | 4.389   |                     |
//!
//! The paper reports total sizes 99, 167, 229 and 180 processors and
//! heterogeneities 20.2%, 6.1%, 36.8% and 34.7% respectively; both are
//! asserted by the tests of this module. Clusters of Rennes and Lille are
//! connected to the same switch while each cluster of Nancy and Sophia has
//! its own switch.

use crate::network::NetworkTopology;
use crate::platform::Platform;
use crate::PlatformBuilder;

/// The Lille subset (Chuque, Chti, Chicon): 99 processors, 20.2% heterogeneity,
/// shared switch.
pub fn lille() -> Platform {
    PlatformBuilder::new("Lille")
        .topology(NetworkTopology::shared_gigabit())
        .cluster("chuque", 53, 3.647)
        .cluster("chti", 20, 4.311)
        .cluster("chicon", 26, 4.384)
        .build()
        .expect("Table 1 parameters are valid")
}

/// The Nancy subset (Grillon, Grelon): 167 processors, 6.1% heterogeneity,
/// per-cluster switches.
pub fn nancy() -> Platform {
    PlatformBuilder::new("Nancy")
        .topology(NetworkTopology::per_cluster_ten_gigabit())
        .cluster("grillon", 47, 3.379)
        .cluster("grelon", 120, 3.185)
        .build()
        .expect("Table 1 parameters are valid")
}

/// The Rennes subset (Parasol, Paravent, Paraquad): 229 processors, 36.8%
/// heterogeneity, shared switch.
pub fn rennes() -> Platform {
    PlatformBuilder::new("Rennes")
        .topology(NetworkTopology::shared_gigabit())
        .cluster("parasol", 64, 3.573)
        .cluster("paravent", 99, 3.364)
        .cluster("paraquad", 66, 4.603)
        .build()
        .expect("Table 1 parameters are valid")
}

/// The Sophia subset (Azur, Helios, Sol): 180 processors, 34.7% heterogeneity,
/// per-cluster switches.
pub fn sophia() -> Platform {
    PlatformBuilder::new("Sophia")
        .topology(NetworkTopology::per_cluster_ten_gigabit())
        .cluster("azur", 74, 3.258)
        .cluster("helios", 56, 3.675)
        .cluster("sol", 50, 4.389)
        .build()
        .expect("Table 1 parameters are valid")
}

/// The four sites used in the paper's evaluation, in the order of Table 1
/// (Lille, Nancy, Rennes, Sophia).
pub fn all_sites() -> Vec<Platform> {
    vec![lille(), nancy(), rennes(), sophia()]
}

/// Looks a site up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Platform> {
    match name.to_ascii_lowercase().as_str() {
        "lille" => Some(lille()),
        "nancy" => Some(nancy()),
        "rennes" => Some(rennes()),
        "sophia" => Some(sophia()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_total_processors() {
        assert_eq!(lille().total_procs(), 99);
        assert_eq!(nancy().total_procs(), 167);
        assert_eq!(rennes().total_procs(), 229);
        assert_eq!(sophia().total_procs(), 180);
    }

    #[test]
    fn table1_heterogeneity_percentages() {
        // Paper: 20.2%, 6.1%, 36.8%, 34.7%.
        assert!((lille().heterogeneity() * 100.0 - 20.2).abs() < 0.15);
        assert!((nancy().heterogeneity() * 100.0 - 6.1).abs() < 0.15);
        assert!((rennes().heterogeneity() * 100.0 - 36.8).abs() < 0.15);
        assert!((sophia().heterogeneity() * 100.0 - 34.7).abs() < 0.15);
    }

    #[test]
    fn table1_topologies() {
        assert!(lille().topology().is_shared());
        assert!(rennes().topology().is_shared());
        assert!(!nancy().topology().is_shared());
        assert!(!sophia().topology().is_shared());
    }

    #[test]
    fn all_sites_order_and_count() {
        let sites = all_sites();
        assert_eq!(sites.len(), 4);
        assert_eq!(sites[0].name(), "Lille");
        assert_eq!(sites[3].name(), "Sophia");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("Rennes").unwrap().total_procs(), 229);
        assert_eq!(by_name("SOPHIA").unwrap().total_procs(), 180);
        assert!(by_name("grenoble").is_none());
    }

    #[test]
    fn cluster_counts_match_table1() {
        assert_eq!(lille().num_clusters(), 3);
        assert_eq!(nancy().num_clusters(), 2);
        assert_eq!(rennes().num_clusters(), 3);
        assert_eq!(sophia().num_clusters(), 3);
    }

    #[test]
    fn total_power_is_consistent() {
        // Nancy: 47*3.379 + 120*3.185 GFlop/s
        let expected = (47.0 * 3.379 + 120.0 * 3.185) * 1.0e9;
        assert!((nancy().total_power() - expected).abs() < 1.0e3);
    }
}
