//! The multi-cluster platform aggregate.

use crate::cluster::{Cluster, ClusterId};
use crate::error::PlatformError;
use crate::network::NetworkTopology;
use crate::procset::ProcSet;
use serde::{Deserialize, Serialize};

/// A multi-cluster platform: a named set of [`Cluster`]s interconnected
/// through a [`NetworkTopology`].
///
/// All scheduling and simulation code addresses clusters by their index in
/// [`Platform::clusters`] and processors by their index within the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    name: String,
    clusters: Vec<Cluster>,
    topology: NetworkTopology,
}

impl Platform {
    /// Assembles a platform after validating the cluster descriptions.
    ///
    /// # Errors
    ///
    /// Returns a [`PlatformError`] if the platform has no cluster, a cluster
    /// has no processor, a speed/bandwidth is non-positive, a latency is
    /// negative or non-finite, or two clusters share the same name.
    pub fn new(
        name: impl Into<String>,
        clusters: Vec<Cluster>,
        topology: NetworkTopology,
    ) -> Result<Self, PlatformError> {
        if clusters.is_empty() {
            return Err(PlatformError::NoClusters);
        }
        let mut seen = std::collections::HashSet::new();
        for c in &clusters {
            if c.num_procs() == 0 {
                return Err(PlatformError::EmptyCluster {
                    name: c.name().to_string(),
                });
            }
            if c.speed() <= 0.0 || c.speed().is_nan() {
                return Err(PlatformError::NonPositiveSpeed {
                    name: c.name().to_string(),
                    speed: c.speed(),
                });
            }
            if c.link_bandwidth() <= 0.0 || c.link_bandwidth().is_nan() {
                return Err(PlatformError::NonPositiveBandwidth {
                    name: c.name().to_string(),
                    bandwidth: c.link_bandwidth(),
                });
            }
            if !c.link_latency().is_finite() || c.link_latency() < 0.0 {
                return Err(PlatformError::InvalidLatency {
                    name: c.name().to_string(),
                    latency: c.link_latency(),
                });
            }
            if !seen.insert(c.name().to_string()) {
                return Err(PlatformError::DuplicateClusterName {
                    name: c.name().to_string(),
                });
            }
        }
        Ok(Self {
            name: name.into(),
            clusters,
            topology,
        })
    }

    /// Platform (site) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The clusters composing the platform.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Returns a cluster by index.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownCluster`] when the index is out of bounds.
    pub fn cluster(&self, id: ClusterId) -> Result<&Cluster, PlatformError> {
        self.clusters.get(id).ok_or(PlatformError::UnknownCluster {
            index: id,
            clusters: self.clusters.len(),
        })
    }

    /// Network topology of the site.
    pub fn topology(&self) -> &NetworkTopology {
        &self.topology
    }

    /// Total number of processors across all clusters.
    pub fn total_procs(&self) -> usize {
        self.clusters.iter().map(Cluster::num_procs).sum()
    }

    /// Total processing power of the platform in flop/s (Σ p_k · s_k).
    ///
    /// Resource constraints β are expressed as fractions of this quantity:
    /// the paper argues that in a heterogeneous platform a constraint
    /// expressed in *processing power* is more meaningful than a processor
    /// count.
    pub fn total_power(&self) -> f64 {
        self.clusters.iter().map(Cluster::total_power).sum()
    }

    /// Speed of the fastest processor of the platform (flop/s).
    pub fn max_speed(&self) -> f64 {
        self.clusters
            .iter()
            .map(Cluster::speed)
            .fold(f64::MIN, f64::max)
    }

    /// Speed of the slowest processor of the platform (flop/s).
    pub fn min_speed(&self) -> f64 {
        self.clusters
            .iter()
            .map(Cluster::speed)
            .fold(f64::MAX, f64::min)
    }

    /// Heterogeneity of the platform, defined in the paper as the ratio
    /// between the speeds of the fastest and slowest processors, expressed
    /// here as the excess percentage (e.g. `0.202` for Lille's 20.2%).
    pub fn heterogeneity(&self) -> f64 {
        self.max_speed() / self.min_speed() - 1.0
    }

    /// Number of processors of the *reference cluster* used by
    /// HCPA-style allocation procedures: the equivalent number of processors
    /// of speed [`Platform::reference_speed`] that matches the platform's
    /// total power.
    pub fn reference_procs(&self) -> usize {
        (self.total_power() / self.reference_speed()).round() as usize
    }

    /// Speed of a processor of the homogeneous reference cluster (flop/s).
    ///
    /// We use the slowest processor speed so that translating a reference
    /// allocation onto any concrete cluster never requires *more* processors
    /// than the reference allocation (the concrete processors are at least as
    /// fast).
    pub fn reference_speed(&self) -> f64 {
        self.min_speed()
    }

    /// A processor set spanning an entire cluster.
    pub fn full_cluster(&self, id: ClusterId) -> Result<ProcSet, PlatformError> {
        let c = self.cluster(id)?;
        Ok(ProcSet::contiguous(id, 0, c.num_procs()))
    }

    /// Largest cluster size (in processors) on the platform.
    pub fn max_cluster_size(&self) -> usize {
        self.clusters
            .iter()
            .map(Cluster::num_procs)
            .max()
            .unwrap_or(0)
    }

    /// Processing power (flop/s) of `n` processors of cluster `k`.
    pub fn power_of(&self, cluster: ClusterId, n: usize) -> Result<f64, PlatformError> {
        Ok(self.cluster(cluster)?.speed() * n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkTopology;

    fn toy() -> Platform {
        Platform::new(
            "toy",
            vec![
                Cluster::from_gflops("a", 10, 1.0),
                Cluster::from_gflops("b", 20, 2.0),
            ],
            NetworkTopology::shared_gigabit(),
        )
        .unwrap()
    }

    #[test]
    fn totals() {
        let p = toy();
        assert_eq!(p.total_procs(), 30);
        assert!((p.total_power() - (10.0 * 1.0e9 + 20.0 * 2.0e9)).abs() < 1.0);
        assert_eq!(p.num_clusters(), 2);
    }

    #[test]
    fn heterogeneity_ratio() {
        let p = toy();
        assert!((p.heterogeneity() - 1.0).abs() < 1e-12); // 2x faster => 100%
    }

    #[test]
    fn reference_cluster_uses_slowest_speed() {
        let p = toy();
        assert_eq!(p.reference_speed(), 1.0e9);
        // total power 50 GFlop/s => 50 reference processors of 1 GFlop/s
        assert_eq!(p.reference_procs(), 50);
    }

    #[test]
    fn rejects_empty_platform() {
        let err = Platform::new("x", vec![], NetworkTopology::shared_gigabit());
        assert_eq!(err.unwrap_err(), PlatformError::NoClusters);
    }

    #[test]
    fn rejects_empty_cluster() {
        let err = Platform::new(
            "x",
            vec![Cluster::from_gflops("a", 0, 1.0)],
            NetworkTopology::shared_gigabit(),
        );
        assert!(matches!(err, Err(PlatformError::EmptyCluster { .. })));
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Platform::new(
            "x",
            vec![
                Cluster::from_gflops("a", 1, 1.0),
                Cluster::from_gflops("a", 2, 2.0),
            ],
            NetworkTopology::shared_gigabit(),
        );
        assert!(matches!(
            err,
            Err(PlatformError::DuplicateClusterName { .. })
        ));
    }

    #[test]
    fn rejects_bad_speed() {
        let err = Platform::new(
            "x",
            vec![Cluster::from_gflops("a", 1, 0.0)],
            NetworkTopology::shared_gigabit(),
        );
        assert!(matches!(err, Err(PlatformError::NonPositiveSpeed { .. })));
    }

    #[test]
    fn cluster_lookup() {
        let p = toy();
        assert_eq!(p.cluster(1).unwrap().name(), "b");
        assert!(p.cluster(7).is_err());
    }

    #[test]
    fn full_cluster_procset() {
        let p = toy();
        let s = p.full_cluster(0).unwrap();
        assert_eq!(s.len(), 10);
        assert_eq!(s.cluster(), 0);
    }

    #[test]
    fn power_of_counts_procs() {
        let p = toy();
        assert!((p.power_of(1, 5).unwrap() - 10.0e9).abs() < 1.0);
    }

    #[test]
    fn max_cluster_size() {
        assert_eq!(toy().max_cluster_size(), 20);
    }
}
