//! # mcsched — concurrent scheduling of parallel task graphs on multi-clusters
//!
//! A reproduction, as a reusable Rust library, of N'Takpé & Suter,
//! *Concurrent Scheduling of Parallel Task Graphs on Multi-Clusters Using
//! Constrained Resource Allocations* (INRIA RR-6774, IPDPS 2009).
//!
//! This façade crate re-exports the workspace crates under a single name and
//! offers a [`prelude`] with the types most programs need:
//!
//! * [`platform`] — heterogeneous multi-cluster platform model and the
//!   Grid'5000 subsets of Table 1;
//! * [`ptg`] — parallel task graph model, moldable-task cost model and the
//!   random/FFT/Strassen generators;
//! * [`simx`] — discrete-event simulation engine (space-shared processors,
//!   max-min fair link sharing);
//! * [`core`] — constrained allocation (SCRAP/SCRAP-MAX), the β-determination
//!   strategies (S, ES, PS-*, WPS-*), the ready-task mapping procedure and
//!   the fairness metrics;
//! * [`workload`] — workload generation upstream of the scheduler: the
//!   DAGGEN-calibrated random-DAG generator, arrival processes, the
//!   spec-resolvable [`workload::WorkloadCatalog`] and replayable JSON
//!   traces;
//! * [`stats`] — paired-replication statistics downstream of the scheduler:
//!   streaming summaries, seeded bootstrap confidence intervals, sign-test
//!   ordering verdicts and a seeded property-test harness;
//! * [`runtime`] — the execution runtime under the harness: a persistent
//!   work-stealing pool (deterministic-index-order fan-outs, nesting,
//!   panic propagation) and the content-addressed cell cache behind
//!   `--cache-dir`/resume;
//! * [`online`] — the event-driven online scheduling service: streamed
//!   arrivals, admission control with backpressure, and open-system
//!   metrics (response, stretch, shed rate) over the same pipeline;
//! * [`obs`] — observability across all of the above: span-based structured
//!   tracing (zero-cost when off), the named-metrics registry, per-phase
//!   profiling, the virtual-time series recorder and the Chrome-trace /
//!   JSONL / metrics exporters behind the binaries' `--obs-*` flags;
//! * [`exp`] — the experiment harness regenerating every table and figure of
//!   the paper's evaluation.
//!
//! ## Quick start
//!
//! Schedulers are assembled with a builder — policies are picked by name
//! from the [`core::policy::PolicyRegistry`] (or supplied as custom trait
//! objects) — and work is submitted as a [`core::Workload`]:
//!
//! ```
//! use mcsched::prelude::*;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! // A Grid'5000 site and three random applications submitted together.
//! let platform = grid5000::lille();
//! let mut rng = ChaCha8Rng::seed_from_u64(42);
//! let apps: Vec<Ptg> = (0..3)
//!     .map(|i| PtgClass::Random.sample(&mut rng, format!("app{i}")))
//!     .collect();
//!
//! // Schedule them with the paper's recommended WPS-width strategy.
//! let scheduler = ConcurrentScheduler::builder()
//!     .constraint("wps-width@0.5")
//!     .allocation("scrap-max")
//!     .build()
//!     .unwrap();
//! let workload = Workload::batch(apps).with_label("quickstart");
//! let evaluation = scheduler.evaluate(&platform, &workload).unwrap();
//! assert_eq!(evaluation.fairness.slowdowns.len(), 3);
//! assert!(evaluation.run.global_makespan > 0.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use mcsched_core as core;
pub use mcsched_exp as exp;
pub use mcsched_obs as obs;
pub use mcsched_online as online;
pub use mcsched_platform as platform;
pub use mcsched_ptg as ptg;
pub use mcsched_runtime as runtime;
pub use mcsched_simx as simx;
pub use mcsched_stats as stats;
pub use mcsched_workload as workload;

/// The most commonly used items, re-exported for `use mcsched::prelude::*`.
pub mod prelude {
    pub use mcsched_core::{
        allocation::AllocationProcedure, AllocationPolicy, Characteristic, ConcurrentRun,
        ConcurrentScheduler, ConstraintPolicy, ConstraintStrategy, EvaluatedRun, MappingConfig,
        MappingPolicy, MappingRequest, OrderingMode, PolicyKind, PolicyRegistry, RefAllocation,
        ReferencePlatform, SchedError, Schedule, ScheduleContext, SchedulerBuilder,
        SchedulerConfig, Workload,
    };
    pub use mcsched_exp::{CampaignConfig, MuSweepConfig};
    pub use mcsched_online::{
        AdmissionPolicy, OnlineConfig, OnlineReport, OnlineScheduler, ReschedulePolicy,
    };
    pub use mcsched_platform::{
        grid5000, Cluster, NetworkTopology, Platform, PlatformBuilder, ProcSet,
    };
    pub use mcsched_ptg::gen::{
        fft_ptg, random_ptg, strassen_ptg, CostScenario, PtgClass, RandomPtgConfig,
    };
    pub use mcsched_ptg::{CostModel, DataParallelTask, Ptg, PtgBuilder};
    pub use mcsched_simx::{Engine, ExecutionTrace, SimJob, SimWorkload};
    pub use mcsched_stats::{
        BootstrapConfig, Ci, OrderingVerdict, PairedSamples, QuickCheck, Samples, Summary,
    };
    pub use mcsched_workload::{
        AppGenerator, ArrivalProcess, DaggenConfig, GeneratorSource, Trace, TraceSource,
        WorkloadCatalog, WorkloadRequest, WorkloadSource,
    };
}
