//! End-to-end integration tests across all workspace crates: platform model,
//! PTG generators, constrained allocation, concurrent mapping, simulated
//! execution and fairness metrics — plus golden-figure snapshots pinning the
//! byte-identical-output guarantee of the experiment harness.

use mcsched::exp::{run_campaign, run_mu_sweep, CampaignConfig, MuSweepConfig};
use mcsched::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sample_apps(class: PtgClass, n: usize, seed: u64) -> Vec<Ptg> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| class.sample(&mut rng, format!("{}-{i}", class.label())))
        .collect()
}

#[test]
fn every_strategy_schedules_every_class_on_every_site() {
    for platform in grid5000::all_sites() {
        for class in [PtgClass::Random, PtgClass::Fft, PtgClass::Strassen] {
            let apps = sample_apps(class, 3, 0xC0FFEE);
            for strategy in ConstraintStrategy::paper_set() {
                let run = ConcurrentScheduler::with_strategy(strategy)
                    .schedule(&platform, &apps)
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} on {} ({}) failed: {e}",
                            strategy.name(),
                            platform.name(),
                            class.label()
                        )
                    });
                assert_eq!(run.apps.len(), 3);
                assert!(run.global_makespan > 0.0);
                for app in &run.apps {
                    assert!(app.makespan > 0.0);
                    assert!(app.makespan <= run.global_makespan + 1e-6);
                    assert!(app.beta > 0.0 && app.beta <= 1.0);
                }
            }
        }
    }
}

#[test]
fn simulated_trace_never_oversubscribes_processors() {
    let platform = grid5000::lille();
    let apps = sample_apps(PtgClass::Random, 4, 7);
    let run = ConcurrentScheduler::with_strategy(ConstraintStrategy::EqualShare)
        .schedule(&platform, &apps)
        .unwrap();
    let records: Vec<_> = run.trace.jobs.iter().flatten().collect();
    for (i, a) in records.iter().enumerate() {
        for b in records.iter().skip(i + 1) {
            if a.procs.intersects(&b.procs) {
                let overlap = a.start < b.finish - 1e-9 && b.start < a.finish - 1e-9;
                assert!(
                    !overlap,
                    "jobs {} and {} share processors and overlap in time",
                    a.job, b.job
                );
            }
        }
    }
}

#[test]
fn simulated_trace_respects_all_precedences() {
    let platform = grid5000::nancy();
    let apps = sample_apps(PtgClass::Fft, 3, 21);
    let run = ConcurrentScheduler::with_strategy(ConstraintStrategy::EqualShare)
        .schedule(&platform, &apps)
        .unwrap();
    for (app, ptg) in apps.iter().enumerate() {
        for e in ptg.edges() {
            let src_job = run.schedule.placements[app][e.src].job;
            let dst_job = run.schedule.placements[app][e.dst].job;
            let src = run.trace.job(src_job).expect("source job ran");
            let dst = run.trace.job(dst_job).expect("destination job ran");
            assert!(
                src.finish <= dst.start + 1e-9,
                "edge {}->{} of app {app} violated: {} > {}",
                e.src,
                e.dst,
                src.finish,
                dst.start
            );
        }
    }
}

#[test]
fn scrap_max_allocations_respect_their_betas() {
    let platform = grid5000::rennes();
    let reference = ReferencePlatform::new(&platform);
    let apps = sample_apps(PtgClass::Random, 5, 99);
    for strategy in [
        ConstraintStrategy::EqualShare,
        ConstraintStrategy::Weighted(Characteristic::Width, 0.5),
        ConstraintStrategy::Proportional(Characteristic::Work),
    ] {
        let betas = strategy.betas(&apps, &reference);
        let scheduler = ConcurrentScheduler::with_strategy(strategy);
        let allocations = scheduler.allocate(&platform, &apps);
        for ((app, alloc), beta) in apps.iter().zip(&allocations).zip(&betas) {
            // Per-level usage must stay within beta * reference processors
            // (with a one-processor-per-task floor: a level with many tasks
            // cannot go below one processor each).
            let structure = mcsched::ptg::analysis::structure(app);
            let budget = beta * reference.procs() as f64;
            for level_tasks in &structure.tasks_by_level {
                let usage: usize = level_tasks.iter().map(|&t| alloc.procs_of(t)).sum();
                let floor = level_tasks.len() as f64;
                assert!(
                    usage as f64 <= budget.max(floor) + 1e-9,
                    "{}: level usage {usage} exceeds budget {budget:.2}",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn dedicated_runs_bound_concurrent_slowdowns() {
    let platform = grid5000::sophia();
    let apps = sample_apps(PtgClass::Random, 4, 3);
    let evaluation = ConcurrentScheduler::with_strategy(ConstraintStrategy::EqualShare)
        .evaluate(&platform, &apps)
        .unwrap();
    for s in &evaluation.fairness.slowdowns {
        assert!(*s > 0.0);
        assert!(
            *s <= 1.1,
            "slowdown {s} should not exceed 1 (plus tolerance)"
        );
    }
    assert!(evaluation.fairness.unfairness < 4.0);
}

#[test]
fn selfish_strategy_matches_dedicated_when_alone() {
    // With a single application, every strategy gives beta = 1 and the
    // concurrent makespan equals the dedicated makespan.
    let platform = grid5000::lille();
    let apps = sample_apps(PtgClass::Strassen, 1, 11);
    for strategy in ConstraintStrategy::paper_set() {
        let scheduler = ConcurrentScheduler::with_strategy(strategy);
        let run = scheduler.schedule(&platform, &apps).unwrap();
        let own = scheduler.dedicated_makespan(&platform, &apps[0]).unwrap();
        assert!(
            (run.apps[0].makespan - own).abs() < 1e-6,
            "{}: single application should behave as dedicated",
            strategy.name()
        );
    }
}

/// Compares `actual` against the committed reference under `tests/golden/`.
/// Regenerate deliberately with `MCSCHED_UPDATE_GOLDEN=1 cargo test --test
/// end_to_end golden` after an *intentional* output change.
fn golden_check(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("MCSCHED_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&path, actual).unwrap();
        eprintln!("golden file {} regenerated", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with MCSCHED_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert!(
        actual == expected,
        "{name} drifted from the committed reference — the figures are no longer \
         byte-identical. If the change is intentional, regenerate with \
         MCSCHED_UPDATE_GOLDEN=1.\n--- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

#[test]
fn golden_fig2_mu_sweep_quick_table_is_byte_stable() {
    // The exact table a default `fig2_mu_sweep` run prints (quick config,
    // default seed): the PR 2/PR 3 "figures byte-identical" guarantee,
    // enforced mechanically.
    let points = run_mu_sweep(&MuSweepConfig::quick()).unwrap();
    golden_check(
        "fig2_mu_sweep_quick.txt",
        &mcsched::exp::table_mu_sweep(&points),
    );
}

#[test]
fn golden_fig3_random_quick_table_is_byte_stable() {
    // The exact table a default `fig3_random` run prints.
    let result = run_campaign(&CampaignConfig::quick(PtgClass::Random)).unwrap();
    golden_check(
        "fig3_random_quick.txt",
        &mcsched::exp::table_campaign(&result),
    );
}

#[test]
fn golden_fig4_fft_quick_table_is_byte_stable() {
    // The exact table a default `fig4_fft` run prints.
    let result = run_campaign(&CampaignConfig::quick(PtgClass::Fft)).unwrap();
    golden_check("fig4_fft_quick.txt", &mcsched::exp::table_campaign(&result));
}

#[test]
fn golden_fig5_strassen_quick_table_is_byte_stable() {
    // The exact table a default `fig5_strassen` run prints.
    let result = run_campaign(&CampaignConfig::quick(PtgClass::Strassen)).unwrap();
    golden_check(
        "fig5_strassen_quick.txt",
        &mcsched::exp::table_campaign(&result),
    );
}

#[test]
fn strassen_width_strategies_degenerate_to_equal_share() {
    // All Strassen PTGs have the same maximal width, so PS-width and
    // WPS-width produce exactly the ES betas (the reason Figure 5 omits them).
    let platform = grid5000::nancy();
    let reference = ReferencePlatform::new(&platform);
    let apps = sample_apps(PtgClass::Strassen, 4, 17);
    let es = ConstraintStrategy::EqualShare.betas(&apps, &reference);
    let ps_width = ConstraintStrategy::Proportional(Characteristic::Width).betas(&apps, &reference);
    let wps_width =
        ConstraintStrategy::Weighted(Characteristic::Width, 0.5).betas(&apps, &reference);
    for i in 0..apps.len() {
        assert!((es[i] - ps_width[i]).abs() < 1e-12);
        assert!((es[i] - wps_width[i]).abs() < 1e-12);
    }
}
