//! Integration tests of the policy registry and the pluggable-policy entry
//! surface: every built-in resolves by name and round-trips, unknown names
//! produce typed errors, and a user-registered policy runs end-to-end
//! through `evaluate` and through a campaign without touching core code.

use mcsched::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn sample_apps(n: usize, seed: u64) -> Vec<Ptg> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| PtgClass::Random.sample(&mut rng, format!("app-{i}")))
        .collect()
}

#[test]
fn every_builtin_constraint_round_trips_name_to_policy_to_name() {
    let registry = PolicyRegistry::builtin();
    // The paper's eight strategies by display name...
    for strategy in ConstraintStrategy::paper_set() {
        let policy = registry
            .constraint(&strategy.name())
            .unwrap_or_else(|e| panic!("{}: {e}", strategy.name()));
        assert_eq!(policy.name(), strategy.name());
    }
    // ...and every registered name resolves to a policy that resolves back
    // to itself through its own display name.
    for name in registry.constraint_names() {
        let policy = registry.constraint(&name).unwrap();
        let again = registry.constraint(&policy.name()).unwrap();
        assert_eq!(policy.name(), again.name(), "via registered name {name}");
    }
}

#[test]
fn every_builtin_allocation_and_mapping_round_trips() {
    let registry = PolicyRegistry::builtin();
    for name in registry.allocation_names() {
        let policy = registry.allocation(&name).unwrap();
        let again = registry.allocation(&policy.name()).unwrap();
        assert_eq!(policy.name(), again.name(), "via registered name {name}");
    }
    for name in registry.mapping_names() {
        let policy = registry.mapping(&name).unwrap();
        let again = registry.mapping(&policy.name()).unwrap();
        assert_eq!(policy.name(), again.name(), "via registered name {name}");
    }
}

#[test]
fn unknown_names_yield_typed_unknown_policy_errors() {
    let registry = PolicyRegistry::builtin();
    match registry.constraint("definitely-not-a-policy") {
        Err(SchedError::UnknownPolicy { kind, name, known }) => {
            assert_eq!(kind, PolicyKind::Constraint);
            assert_eq!(name, "definitely-not-a-policy");
            assert!(!known.is_empty());
        }
        other => panic!("expected UnknownPolicy, got {other:?}"),
    }
    // The same error surfaces through the builder...
    assert!(matches!(
        ConcurrentScheduler::builder().constraint("nope").build(),
        Err(SchedError::UnknownPolicy { .. })
    ));
    // ...and carries a readable message naming the family.
    let msg = registry.mapping("nope").unwrap_err().to_string();
    assert!(msg.contains("mapping"), "{msg}");
    assert!(msg.contains("`nope`"), "{msg}");
}

/// A policy the core crates know nothing about: β decays geometrically with
/// the submission rank (earlier applications get larger shares).
#[derive(Debug)]
struct RankDecay;

impl ConstraintPolicy for RankDecay {
    fn name(&self) -> String {
        "rank-decay".to_string()
    }

    fn betas(&self, ptgs: &[Ptg], _reference: &ReferencePlatform) -> Vec<f64> {
        (0..ptgs.len())
            .map(|i| (0.5f64.powi(i as i32)).max(0.05))
            .collect()
    }
}

#[test]
fn custom_registered_policy_runs_end_to_end_through_evaluate() {
    let mut registry = PolicyRegistry::builtin();
    registry.register_constraint_instance("rank-decay", Arc::new(RankDecay));

    let platform = grid5000::sophia();
    let apps = sample_apps(3, 0xDECAF);
    let scheduler = ConcurrentScheduler::builder()
        .registry(registry)
        .constraint("rank-decay")
        .build()
        .unwrap();

    let workload = Workload::batch(apps).with_label("custom-policy-e2e");
    let evaluation = scheduler.evaluate(&platform, &workload).unwrap();

    assert_eq!(evaluation.run.apps.len(), 3);
    assert!(evaluation.run.global_makespan > 0.0);
    assert_eq!(evaluation.fairness.slowdowns.len(), 3);
    // The custom β vector actually drove the pipeline.
    let betas: Vec<f64> = evaluation.run.apps.iter().map(|a| a.beta).collect();
    assert_eq!(betas, vec![1.0, 0.5, 0.25]);
    for s in &evaluation.fairness.slowdowns {
        assert!(*s > 0.0 && *s <= 1.1);
    }
}

#[test]
fn custom_policy_slots_into_a_campaign_next_to_builtins() {
    use mcsched::exp::{run_campaign, CampaignConfig};

    let custom: Arc<dyn ConstraintPolicy> = Arc::new(RankDecay);
    let mut strategies = CampaignConfig::policies(&[ConstraintStrategy::EqualShare]);
    strategies.push(custom);
    let config = CampaignConfig {
        ptg_counts: vec![2],
        combinations: 1,
        strategies,
        threads: 2,
        ..CampaignConfig::paper(PtgClass::Strassen)
    };
    let result = run_campaign(&config).unwrap();
    assert_eq!(
        result.strategies(),
        vec!["ES".to_string(), "rank-decay".to_string()]
    );
    let custom_point = result.point(2, "rank-decay").expect("custom cell exists");
    assert!(custom_point.makespan > 0.0);
    assert!(custom_point.unfairness >= 0.0);
}

#[test]
fn parameterised_names_reach_the_scheduler_pipeline() {
    let platform = grid5000::lille();
    let apps = sample_apps(2, 7);
    let by_name = ConcurrentScheduler::builder()
        .constraint("wps-work@0.7")
        .build()
        .unwrap();
    let by_enum =
        ConcurrentScheduler::with_strategy(ConstraintStrategy::Weighted(Characteristic::Work, 0.7));
    let a = by_name.schedule(&platform, &apps).unwrap();
    let b = by_enum.schedule(&platform, &apps).unwrap();
    assert_eq!(a.apps, b.apps);
    assert_eq!(a.global_makespan, b.global_makespan);
}
