//! Property-style tests of the whole pipeline: whatever the (bounded) random
//! platform and application mix, the scheduler must produce a valid,
//! precedence-respecting, non-oversubscribed schedule whose betas lie in
//! (0, 1].
//!
//! The cases are driven by [`mcsched_stats::quickcheck::QuickCheck`]
//! (`proptest` is unavailable offline): every case draws from a
//! deterministically seeded RNG, generator dimensions scale with the
//! harness's size bound so failures *shrink by halving* to a smaller
//! counterexample, and the failure message prints the reproducing
//! `(seed, size)` pair for `QuickCheck::replay`.

use mcsched::prelude::*;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: u64 = 24;

/// Caps a draw dimension by the harness size bound: full range at the
/// default start size, proportionally smaller while shrinking.
fn cap(size: u32, max: usize) -> usize {
    (size as usize).max(1).min(max)
}

/// Draws a small random multi-cluster platform (1-3 clusters, 2-23
/// processors each, 1-5 GFlop/s, both topology styles — upper bounds shrink
/// with `size`).
fn gen_platform(rng: &mut ChaCha8Rng, size: u32) -> Platform {
    let shared: bool = rng.gen_bool(0.5);
    let mut builder = PlatformBuilder::new("prop-platform").topology(if shared {
        NetworkTopology::shared_gigabit()
    } else {
        NetworkTopology::per_cluster_ten_gigabit()
    });
    let clusters = rng.gen_range(1..=cap(size, 3));
    for i in 0..clusters {
        let procs = rng.gen_range(2..=cap(size, 23).max(2));
        let gflops = rng.gen_range(1.0..5.0);
        builder = builder.cluster(format!("c{i}"), procs, gflops);
    }
    builder.build().expect("generated platforms are valid")
}

/// Draws a small set of applications (1-4 PTGs of one class; the count and
/// the random-class task count shrink with `size`).
fn gen_apps(rng: &mut ChaCha8Rng, size: u32) -> Vec<Ptg> {
    let count = rng.gen_range(1..=cap(size, 4));
    let class = [PtgClass::Random, PtgClass::Fft, PtgClass::Strassen][rng.gen_range(0..3usize)];
    let mut app_rng = ChaCha8Rng::seed_from_u64(rng.next_u64());
    (0..count)
        .map(|i| {
            // Keep random PTGs small so each case stays fast.
            if class == PtgClass::Random {
                let cfg = RandomPtgConfig {
                    num_tasks: cap(size, 10).max(2),
                    ..RandomPtgConfig::default_config()
                };
                random_ptg(&cfg, &mut app_rng, format!("app{i}"))
            } else {
                class.sample(&mut app_rng, format!("app{i}"))
            }
        })
        .collect()
}

/// Draws one strategy from a pool covering every variant.
fn gen_strategy(rng: &mut ChaCha8Rng) -> ConstraintStrategy {
    match rng.gen_range(0..6usize) {
        0 => ConstraintStrategy::Selfish,
        1 => ConstraintStrategy::EqualShare,
        2 => ConstraintStrategy::Proportional(Characteristic::Work),
        3 => ConstraintStrategy::Proportional(Characteristic::Width),
        4 => ConstraintStrategy::Weighted(Characteristic::Work, rng.gen_range(0.0..=1.0)),
        _ => ConstraintStrategy::Weighted(Characteristic::CriticalPath, rng.gen_range(0.0..=1.0)),
    }
}

#[test]
fn scheduler_always_produces_a_valid_run() {
    QuickCheck::new(0xA11CE).cases(CASES).run(|rng, size| {
        let platform = gen_platform(rng, size);
        let apps = gen_apps(rng, size);
        let strategy = gen_strategy(rng);

        let reference = ReferencePlatform::new(&platform);
        let betas = strategy.betas(&apps, &reference);
        assert_eq!(betas.len(), apps.len());
        for b in &betas {
            assert!(*b > 0.0 && *b <= 1.0, "beta {b} out of (0, 1]");
        }

        let run = ConcurrentScheduler::with_strategy(strategy)
            .schedule(&platform, &apps)
            .expect("scheduling never fails on valid inputs");

        // Every task ran, makespans are consistent.
        assert!(run.global_makespan > 0.0);
        let total_tasks: usize = apps.iter().map(Ptg::num_tasks).sum();
        assert_eq!(run.schedule.workload.num_jobs(), total_tasks);
        for app in &run.apps {
            assert!(app.makespan > 0.0);
            assert!(app.makespan <= run.global_makespan + 1e-6);
        }

        // Precedence constraints hold in the simulated trace.
        for (a, ptg) in apps.iter().enumerate() {
            for e in ptg.edges() {
                let src = run
                    .trace
                    .job(run.schedule.placements[a][e.src].job)
                    .unwrap();
                let dst = run
                    .trace
                    .job(run.schedule.placements[a][e.dst].job)
                    .unwrap();
                assert!(
                    src.finish <= dst.start + 1e-9,
                    "edge {}->{} of app {a} violated",
                    e.src,
                    e.dst
                );
            }
        }

        // No processor oversubscription in the simulated trace.
        let records: Vec<_> = run.trace.jobs.iter().flatten().collect();
        for (i, x) in records.iter().enumerate() {
            for y in records.iter().skip(i + 1) {
                if x.procs.intersects(&y.procs) {
                    assert!(
                        x.finish <= y.start + 1e-9 || y.finish <= x.start + 1e-9,
                        "overlapping jobs on shared processors"
                    );
                }
            }
        }
    });
}

#[test]
fn allocations_stay_within_cluster_capacity() {
    QuickCheck::new(0xB0B).cases(CASES).run(|rng, size| {
        let platform = gen_platform(rng, size);
        let apps = gen_apps(rng, size);
        let scheduler = ConcurrentScheduler::with_strategy(ConstraintStrategy::EqualShare);
        let reference = ReferencePlatform::new(&platform);
        let allocations = scheduler.allocate(&platform, &apps);
        for alloc in &allocations {
            for &n in alloc.counts() {
                assert!(n >= 1);
                assert!(n <= reference.max_task_procs());
            }
        }
    });
}

#[test]
fn fairness_metrics_are_well_formed() {
    QuickCheck::new(0xFA1).cases(CASES).run(|rng, size| {
        let count = rng.gen_range(2..=cap(size, 4).max(2));
        let platform = grid5000::lille();
        let mut app_rng = ChaCha8Rng::seed_from_u64(rng.next_u64());
        let apps: Vec<Ptg> = (0..count)
            .map(|i| PtgClass::Strassen.sample(&mut app_rng, format!("s{i}")))
            .collect();
        let evaluation = ConcurrentScheduler::with_strategy(ConstraintStrategy::EqualShare)
            .evaluate(&platform, &apps)
            .unwrap();
        assert_eq!(evaluation.fairness.slowdowns.len(), count);
        for s in &evaluation.fairness.slowdowns {
            // Slowdowns are usually <= 1 but the two-step heuristic is not
            // monotone in beta, so a constrained run can occasionally beat
            // the dedicated one; only require a sane, finite ratio.
            assert!(*s > 0.0 && *s <= 3.0 && s.is_finite(), "slowdown {s}");
        }
        assert!(evaluation.fairness.unfairness >= 0.0);
        assert!(evaluation.fairness.unfairness <= 2.0 * count as f64);
    });
}
