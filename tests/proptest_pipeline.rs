//! Property-based tests of the whole pipeline: whatever the (bounded) random
//! platform and application mix, the scheduler must produce a valid,
//! precedence-respecting, non-oversubscribed schedule whose betas lie in
//! (0, 1].

use mcsched::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy generating a small random multi-cluster platform.
fn platform_strategy() -> impl Strategy<Value = Platform> {
    (
        proptest::collection::vec((2usize..24, 1.0f64..5.0), 1..4),
        any::<bool>(),
    )
        .prop_map(|(clusters, shared)| {
            let mut builder = PlatformBuilder::new("prop-platform").topology(if shared {
                NetworkTopology::shared_gigabit()
            } else {
                NetworkTopology::per_cluster_ten_gigabit()
            });
            for (i, (procs, gflops)) in clusters.into_iter().enumerate() {
                builder = builder.cluster(format!("c{i}"), procs, gflops);
            }
            builder.build().expect("generated platforms are valid")
        })
}

/// Strategy generating a small set of applications.
fn apps_strategy() -> impl Strategy<Value = Vec<Ptg>> {
    (1usize..5, any::<u64>(), 0usize..3).prop_map(|(count, seed, class_idx)| {
        let class = [PtgClass::Random, PtgClass::Fft, PtgClass::Strassen][class_idx];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..count)
            .map(|i| {
                // Keep random PTGs small so each proptest case stays fast.
                if class == PtgClass::Random {
                    let cfg = RandomPtgConfig {
                        num_tasks: 10,
                        ..RandomPtgConfig::default_config()
                    };
                    random_ptg(&cfg, &mut rng, format!("app{i}"))
                } else {
                    class.sample(&mut rng, format!("app{i}"))
                }
            })
            .collect()
    })
}

fn strategy_pool() -> impl Strategy<Value = ConstraintStrategy> {
    prop_oneof![
        Just(ConstraintStrategy::Selfish),
        Just(ConstraintStrategy::EqualShare),
        Just(ConstraintStrategy::Proportional(Characteristic::Work)),
        Just(ConstraintStrategy::Proportional(Characteristic::Width)),
        (0.0f64..=1.0).prop_map(|mu| ConstraintStrategy::Weighted(Characteristic::Work, mu)),
        (0.0f64..=1.0).prop_map(|mu| ConstraintStrategy::Weighted(Characteristic::CriticalPath, mu)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn scheduler_always_produces_a_valid_run(
        platform in platform_strategy(),
        apps in apps_strategy(),
        strategy in strategy_pool(),
    ) {
        let reference = ReferencePlatform::new(&platform);
        let betas = strategy.betas(&apps, &reference);
        prop_assert_eq!(betas.len(), apps.len());
        for b in &betas {
            prop_assert!(*b > 0.0 && *b <= 1.0);
        }

        let run = ConcurrentScheduler::with_strategy(strategy)
            .schedule(&platform, &apps)
            .expect("scheduling never fails on valid inputs");

        // Every task ran, makespans are consistent.
        prop_assert!(run.global_makespan > 0.0);
        let total_tasks: usize = apps.iter().map(Ptg::num_tasks).sum();
        prop_assert_eq!(run.schedule.workload.num_jobs(), total_tasks);
        for app in &run.apps {
            prop_assert!(app.makespan > 0.0);
            prop_assert!(app.makespan <= run.global_makespan + 1e-6);
        }

        // Precedence constraints hold in the simulated trace.
        for (a, ptg) in apps.iter().enumerate() {
            for e in ptg.edges() {
                let src = run.trace.job(run.schedule.placements[a][e.src].job).unwrap();
                let dst = run.trace.job(run.schedule.placements[a][e.dst].job).unwrap();
                prop_assert!(src.finish <= dst.start + 1e-9);
            }
        }

        // No processor oversubscription in the simulated trace.
        let records: Vec<_> = run.trace.jobs.iter().flatten().collect();
        for (i, x) in records.iter().enumerate() {
            for y in records.iter().skip(i + 1) {
                if x.procs.intersects(&y.procs) {
                    prop_assert!(
                        x.finish <= y.start + 1e-9 || y.finish <= x.start + 1e-9,
                        "overlapping jobs on shared processors"
                    );
                }
            }
        }
    }

    #[test]
    fn allocations_stay_within_cluster_capacity(
        platform in platform_strategy(),
        apps in apps_strategy(),
    ) {
        let scheduler = ConcurrentScheduler::with_strategy(ConstraintStrategy::EqualShare);
        let reference = ReferencePlatform::new(&platform);
        let allocations = scheduler.allocate(&platform, &apps);
        for alloc in &allocations {
            for &n in alloc.counts() {
                prop_assert!(n >= 1);
                prop_assert!(n <= reference.max_task_procs());
            }
        }
    }

    #[test]
    fn fairness_metrics_are_well_formed(
        seed in any::<u64>(),
        count in 2usize..5,
    ) {
        let platform = grid5000::lille();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let apps: Vec<Ptg> = (0..count)
            .map(|i| PtgClass::Strassen.sample(&mut rng, format!("s{i}")))
            .collect();
        let evaluation = ConcurrentScheduler::with_strategy(ConstraintStrategy::EqualShare)
            .evaluate(&platform, &apps)
            .unwrap();
        prop_assert_eq!(evaluation.fairness.slowdowns.len(), count);
        for s in &evaluation.fairness.slowdowns {
            // Slowdowns are usually <= 1 but the two-step heuristic is not
            // monotone in beta, so a constrained run can occasionally beat the
            // dedicated one; only require a sane, finite ratio.
            prop_assert!(*s > 0.0 && *s <= 3.0 && s.is_finite());
        }
        prop_assert!(evaluation.fairness.unfairness >= 0.0);
        prop_assert!(evaluation.fairness.unfairness <= 2.0 * count as f64);
    }
}
