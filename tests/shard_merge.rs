//! Sharded multi-process campaigns and the deterministic cache merge:
//!
//! * **disjointness** — every cell digest lands in exactly one of N
//!   partitions for N ∈ {2, 3, 16}, measured over real campaign cells;
//! * **shard/merge byte-identity** — a campaign split `--shard {0,1,2}/3`
//!   into three separate cache directories, merged, and re-rendered warm
//!   produces tables and CSVs byte-identical to the single-process run, at
//!   1, 2 and 8 worker threads (and the merged directory itself is
//!   byte-identical to the one the unsharded run wrote);
//! * **kill / merge / re-shard torture** — one shard is killed mid-run
//!   (only its first data points flushed, stale temp debris left behind),
//!   the partial caches are merged anyway, the remaining work is re-run
//!   under a *different* shard count seeded from the merged store, and the
//!   final merge still renders the baseline byte-for-byte;
//! * **conflict rejection** — sources disagreeing on one digest abort the
//!   merge naming both files, writing nothing.

use mcsched::exp::{
    cell_digest, generate_scenarios, run_campaign, CampaignConfig, ScenarioOutcome,
};
use mcsched::ptg::gen::PtgClass;
use mcsched::runtime::{merge_cache_dirs, CellCache, CellMetrics, DigestBuilder, MergeError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique temporary directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "mcsched-shard-merge-{tag}-{}-{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }

    fn path(&self) -> PathBuf {
        self.0.clone()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The same small-but-not-trivial campaign the determinism tier uses:
/// 2 PTG counts × 2 combinations × 4 platforms × 2 replications × 6
/// strategies = 192 cells.
fn campaign_config() -> CampaignConfig {
    CampaignConfig {
        ptg_counts: vec![2, 4],
        combinations: 2,
        replications: 2,
        ..CampaignConfig::quick(PtgClass::Strassen)
    }
}

/// Renders a campaign to its two user-visible byte streams.
fn campaign_bytes(config: &CampaignConfig) -> (String, String) {
    let result = run_campaign(config).expect("campaign runs");
    (
        mcsched::exp::table_campaign(&result),
        mcsched::exp::csv_campaign(&result),
    )
}

/// `(file name, file bytes)` for every file of a cache directory, sorted.
fn dir_bytes(dir: &std::path::Path) -> Vec<(String, String)> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|f| {
            (
                f.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&f).unwrap(),
            )
        })
        .collect()
}

#[test]
fn every_campaign_cell_lands_in_exactly_one_partition() {
    // Real cell digests, not synthetic ones: the scenarios and policies of
    // the shared campaign shape.
    let config = campaign_config();
    let pipeline = config.base.pipeline_cache_key();
    let scenarios = generate_scenarios(PtgClass::Strassen, 2, config.combinations, config.seed);
    let mut digests = Vec::new();
    for scenario in &scenarios {
        for policy in &config.strategies {
            digests.push(cell_digest(
                "strassen",
                &pipeline,
                scenario,
                policy.as_ref(),
            ));
        }
    }
    assert!(digests.len() >= 40, "enough cells to exercise partitioning");
    for of in [2usize, 3, 16] {
        let mut hit = vec![0usize; of];
        for &digest in &digests {
            let owners = (0..of).filter(|&i| digest.in_shard(i, of)).count();
            assert_eq!(owners, 1, "digest {digest} must have exactly one owner");
            hit[digest.partition(of)] += 1;
        }
        let total: usize = hit.iter().sum();
        assert_eq!(total, digests.len(), "partitions cover every cell");
    }
}

#[test]
fn sharded_runs_merge_to_the_unsharded_output_byte_for_byte() {
    let full = campaign_config();
    let baseline = campaign_bytes(&full);

    // Reference store: what a single-process cached run writes.
    let reference = TempDir::new("reference");
    {
        let mut cached = full.clone();
        cached.cache_dir = Some(reference.path());
        cached.threads = 1;
        assert_eq!(campaign_bytes(&cached), baseline);
    }

    for threads in [1usize, 2, 8] {
        // Three shard processes, each with its own cache directory. Their
        // own tables are partial (NaN placeholders) — the product is the
        // cache directories.
        let shards: Vec<TempDir> = (0..3)
            .map(|i| TempDir::new(&format!("shard{i}-t{threads}")))
            .collect();
        for (index, dir) in shards.iter().enumerate() {
            let mut config = full.clone();
            config.threads = threads;
            config.cache_dir = Some(dir.path());
            config.shard = Some((index, 3));
            let sharded = campaign_bytes(&config);
            assert_ne!(
                sharded, baseline,
                "a sharded run's own tables are partial, not the product"
            );
        }

        // Disjointness on disk: the shard caches partition the cell set.
        let cells: Vec<usize> = shards
            .iter()
            .map(|d| CellCache::open(d.path(), true).unwrap().resumed())
            .collect();
        assert!(cells.iter().all(|&c| c > 0), "every shard computed cells");

        // Merge, then render warm and unsharded from the merged store.
        let merged = TempDir::new(&format!("merged-t{threads}"));
        let sources: Vec<PathBuf> = shards.iter().map(TempDir::path).collect();
        let report = merge_cache_dirs(&sources, &merged.path()).expect("shard dirs merge");
        assert_eq!(report.sources, 3);
        assert_eq!(
            report.duplicates, 0,
            "disjoint shards share no cell: {cells:?}"
        );
        assert_eq!(report.cells, cells.iter().sum::<usize>());

        let mut warm = full.clone();
        warm.threads = threads;
        warm.cache_dir = Some(merged.path());
        assert_eq!(
            campaign_bytes(&warm),
            baseline,
            "merged warm output drifted at {threads} threads"
        );

        if threads == 1 {
            // The merged directory is byte-identical to the unsharded store
            // — same cells, same key-sorted rendering. (The warm run above
            // may append nothing: every cell was already present.)
            assert_eq!(
                dir_bytes(&merged.path()),
                dir_bytes(&reference.path()),
                "merge must reproduce the single-process store exactly"
            );
        }
    }
}

#[test]
fn kill_merge_reshard_torture_still_matches_the_baseline() {
    let full = campaign_config();
    let baseline = campaign_bytes(&full);

    // Phase 1: a 3-way sharded campaign in which shard 1 is "killed" after
    // its first data points — simulated by running only PTG count 2 — and
    // leaves mid-flush debris behind.
    let shards: Vec<TempDir> = (0..3).map(|i| TempDir::new(&format!("kill{i}"))).collect();
    for (index, dir) in shards.iter().enumerate() {
        let mut config = full.clone();
        config.cache_dir = Some(dir.path());
        config.shard = Some((index, 3));
        if index == 1 {
            config.ptg_counts = vec![2];
        }
        let _ = campaign_bytes(&config);
    }
    std::fs::write(
        shards[1].path().join("shard-03.json.tmp"),
        "{\"version\":1,tru",
    )
    .unwrap();

    // Phase 2: merge what survived. The partial shard contributes its
    // completed cells; the stale temporary is not a shard file and is
    // ignored by the merge.
    let merged = TempDir::new("kill-merged");
    let sources: Vec<PathBuf> = shards.iter().map(TempDir::path).collect();
    let partial_report = merge_cache_dirs(&sources, &merged.path()).expect("partial dirs merge");
    assert!(partial_report.cells > 0);

    // Phase 3: re-shard the remaining work under a *different* N. Each
    // re-shard run starts from a copy of the merged store (merge-into acts
    // as the seed), serves everything already computed, and evaluates only
    // its own partition of the missing cells.
    let reshards: Vec<TempDir> = (0..2)
        .map(|i| TempDir::new(&format!("reshard{i}")))
        .collect();
    for (index, dir) in reshards.iter().enumerate() {
        merge_cache_dirs(&[merged.path()], &dir.path()).expect("seeding a re-shard dir");
        let mut config = full.clone();
        config.cache_dir = Some(dir.path());
        config.shard = Some((index, 2));
        let _ = campaign_bytes(&config);
    }

    // Phase 4: final merge (duplicates abound — every re-shard dir holds
    // the full seeded store — but all bit-identical) and warm render.
    let final_dir = TempDir::new("kill-final");
    let sources: Vec<PathBuf> = reshards.iter().map(TempDir::path).collect();
    let report = merge_cache_dirs(&sources, &final_dir.path()).expect("re-shard dirs merge");
    assert!(
        report.duplicates > 0,
        "re-shard dirs share the seeded cells"
    );

    let mut warm = full.clone();
    warm.cache_dir = Some(final_dir.path());
    assert_eq!(
        campaign_bytes(&warm),
        baseline,
        "kill + merge + re-shard must still render the baseline"
    );
}

#[test]
fn merge_rejects_conflicting_sources_naming_both() {
    let a = TempDir::new("conflict-a");
    let b = TempDir::new("conflict-b");
    let dest = TempDir::new("conflict-dest");
    let digest = DigestBuilder::new().str("conflicting-cell").finish();
    let metrics = |makespan: f64| CellMetrics {
        unfairness: 0.25,
        makespan,
        average_slowdown: 2.0,
    };
    for (dir, makespan) in [(&a, 100.0), (&b, 200.0)] {
        let cache = CellCache::open(dir.path(), true).unwrap();
        cache.insert(digest, metrics(makespan));
        cache.flush().unwrap();
    }
    let err = merge_cache_dirs(&[a.path(), b.path()], &dest.path())
        .expect_err("conflicting sources must not merge");
    match &err {
        MergeError::Conflict {
            digest: d,
            first,
            second,
        } => {
            assert_eq!(*d, digest);
            assert!(first.starts_with(a.path()));
            assert!(second.starts_with(b.path()));
        }
        other => panic!("expected Conflict, got {other}"),
    }
    let message = err.to_string();
    assert!(message.contains(&digest.to_hex()), "error names the digest");
    assert!(
        std::fs::read_dir(dest.path())
            .map(|d| d.count() == 0)
            .unwrap_or(true),
        "a failed merge writes nothing"
    );
}

#[test]
fn skipped_cells_are_nan_placeholders_under_a_real_strategy_name() {
    // The contract the report layer relies on: a sharded run's skipped
    // cells carry the strategy label (so table shapes are stable) and
    // all-NaN metrics (so no aggregate mistakes them for measurements).
    let placeholder = ScenarioOutcome::skipped("ES".to_string());
    assert_eq!(placeholder.strategy, "ES");
    assert!(placeholder.unfairness.is_nan());
    assert!(placeholder.makespan.is_nan());
    assert!(placeholder.average_slowdown.is_nan());
}
