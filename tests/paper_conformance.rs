//! Paper-conformance tier: the paper's qualitative claims asserted as
//! *statistical* statements — paired-replication comparisons under common
//! random numbers, judged by seeded bootstrap confidence intervals and exact
//! sign tests (`mcsched_stats`) instead of bare point estimates.
//!
//! Two scales share one set of check functions:
//!
//! * a **smoke subset** (reduced combinations/replications) that always runs
//!   under `cargo test` and pins the machinery: determinism of the seeded
//!   intervals, pairing alignment, and the noise-tolerant bounds;
//! * the **paper-scale** checks (25 combinations × 4 platforms × 4
//!   replications per cell), `#[ignore]`d by default because they take
//!   minutes. Opt in either with `cargo test --test paper_conformance --
//!   --ignored` or by setting `MCSCHED_CONFORMANCE=1`, which routes the same
//!   checks through the always-on `conformance_tier_via_env` driver.
//!
//! Measured paper-scale verdicts are recorded in ROADMAP.md (WPS-vs-PS) so
//! the asserted bands here are regression guards around *measured* reality,
//! not aspirations copied from the paper.
//!
//! The paper-scale driver understands the runtime's caching controls via
//! environment variables (tests have no CLI):
//! `MCSCHED_CACHE_DIR=<dir>` persists every evaluated cell in the
//! content-addressed cell cache, so an interrupted paper-scale run resumes
//! from its completed shards on the next invocation and a re-run after an
//! unrelated code change replays in seconds; `MCSCHED_NO_RESUME=1` clears
//! that directory first; `MCSCHED_PROGRESS=1` narrates data points on
//! stderr.

use mcsched::exp::{
    paired_mu_unfairness, run_campaign, run_mu_sweep, CampaignConfig, MuSweepConfig,
};
use mcsched::prelude::*;
use mcsched::stats::{OrderingVerdict, PairedSamples};

/// One evaluation scale: how many combinations and paired replications every
/// cell aggregates (runs per cell = combinations × 4 platforms ×
/// replications).
#[derive(Clone, Copy)]
struct Scale {
    combinations: usize,
    replications: usize,
    /// Loosens the smoke-scale acceptance bands (1.0 at paper scale).
    slack: f64,
}

/// Reduced scale: fast enough for the default `cargo test` run.
const SMOKE: Scale = Scale {
    combinations: 2,
    replications: 2,
    slack: 5.0,
};

/// The paper's scale (100 runs per cell) times 4 paired replications.
const PAPER: Scale = Scale {
    combinations: 25,
    replications: 4,
    slack: 1.0,
};

const SEED: u64 = 0x5EED;

fn conformance_enabled() -> bool {
    std::env::var("MCSCHED_CONFORMANCE").is_ok_and(|v| v == "1")
}

/// Reads the `MCSCHED_CACHE_DIR` / `MCSCHED_NO_RESUME` / `MCSCHED_PROGRESS`
/// environment controls — the conformance driver's equivalent of
/// `--cache-dir`/`--no-resume`/`--progress` — as `(cache_dir, resume,
/// progress)`. The single reader for both the campaign and µ-sweep paths,
/// so the two halves of the driver can never honour different protocols.
fn env_runtime_controls() -> (Option<std::path::PathBuf>, bool, bool) {
    (
        std::env::var_os("MCSCHED_CACHE_DIR").map(std::path::PathBuf::from),
        !std::env::var("MCSCHED_NO_RESUME").is_ok_and(|v| v == "1"),
        std::env::var("MCSCHED_PROGRESS").is_ok_and(|v| v == "1"),
    )
}

/// Applies [`env_runtime_controls`] to a campaign configuration.
fn with_env_runtime(mut config: CampaignConfig) -> CampaignConfig {
    (config.cache_dir, config.resume, config.progress) = env_runtime_controls();
    config
}

/// The width-calibrated DAGGEN source used by the Fig. 3 probes (ROADMAP).
fn daggen_grid() -> std::sync::Arc<dyn WorkloadSource> {
    WorkloadCatalog::builtin()
        .resolve("daggen-grid")
        .expect("calibrated spec resolves")
}

fn campaign(
    scale: Scale,
    source: std::sync::Arc<dyn WorkloadSource>,
    names: &[&str],
) -> CampaignConfig {
    let registry = PolicyRegistry::builtin();
    with_env_runtime(CampaignConfig {
        source,
        ptg_counts: vec![8],
        combinations: scale.combinations,
        replications: scale.replications,
        strategies: names
            .iter()
            .map(|n| registry.constraint(n).expect("registry names resolve"))
            .collect(),
        ..CampaignConfig::paper(PtgClass::Random)
    })
}

fn ci_config() -> BootstrapConfig {
    BootstrapConfig::seeded(SEED)
}

/// Runs the Fig. 3 WPS-work vs PS-work comparison on the calibrated DAGGEN
/// generator and returns the paired unfairness differences (WPS − PS).
fn fig3_wps_vs_ps(scale: Scale) -> PairedSamples {
    let config = campaign(scale, daggen_grid(), &["ps-work", "wps-work"]);
    let result = run_campaign(&config).unwrap();
    result
        .paired_unfairness(8, "WPS-work", "PS-work")
        .expect("cells share scenarios")
}

/// Fig. 3 (paper claim: WPS-work is fairer than PS-work; measured: the gap
/// is a near-zero wash — see ROADMAP). The conformance statement is the
/// *measured* one: a deterministic, reproducible CI around the paired mean
/// difference that stays inside the recorded noise band.
fn check_fig3_wps_vs_ps(scale: Scale) {
    let paired = fig3_wps_vs_ps(scale);
    let expected_pairs = scale.combinations * 4 * scale.replications;
    assert_eq!(paired.len(), expected_pairs);

    let ci = paired.bootstrap_ci(&ci_config());
    let verdict = paired.verdict(&ci_config());
    eprintln!(
        "fig3 WPS-work vs PS-work unfairness ({} pairs): mean diff {:+.4}, CI {}, {}",
        paired.len(),
        paired.mean_diff(),
        ci,
        verdict
    );

    // The interval is seeded: recomputing it is bit-identical. (Whole-run
    // reproducibility — fresh campaign, same verdict — is pinned separately
    // by `smoke_verdicts_are_reproducible_across_processes`, so this avoids
    // doubling the minutes-long paper-scale campaign.)
    assert_eq!(ci, paired.bootstrap_ci(&ci_config()));

    // Regression band around the measured paper-scale reality (ROADMAP): the
    // calibrated generator leaves WPS-work within ±0.05 of PS-work — the
    // systematic reversal of the legacy generator must not come back, and a
    // sudden strict ordering would be just as suspicious a change.
    let band = 0.05 * scale.slack;
    assert!(
        ci.lo > -band && ci.hi < band,
        "paired CI {ci} escaped the measured ±{band:.3} noise band"
    );
}

/// Fig. 2 µ endpoints (unambiguous in the paper): µ = 1 (equal share) is
/// strictly fairer than µ = 0 (pure proportional share) at 8 concurrent
/// PTGs. Asserted as an ordering verdict over paired replications.
fn check_mu_endpoint_ordering(scale: Scale) {
    // The sweep honours the same env controls as the campaigns; the cell
    // formats are shared, so one MCSCHED_CACHE_DIR serves both.
    let (cache_dir, resume, progress) = env_runtime_controls();
    let config = MuSweepConfig {
        mu_values: vec![0.0, 1.0],
        ptg_counts: vec![8],
        combinations: scale.combinations,
        replications: scale.replications,
        cache_dir,
        resume,
        progress,
        ..MuSweepConfig::paper()
    };
    let points = run_mu_sweep(&config).unwrap();
    // a = µ=1 (ES), b = µ=0 (PS): the paper orders a below b.
    let paired = paired_mu_unfairness(&points, 8, 1.0, 0.0).expect("endpoints evaluated");
    let verdict = paired.verdict(&ci_config());
    eprintln!(
        "fig2 mu=1 vs mu=0 unfairness ({} pairs): mean diff {:+.4}, {}",
        paired.len(),
        paired.mean_diff(),
        verdict
    );
    if scale.slack <= 1.0 {
        // Paper scale: the strict ordering must reproduce.
        assert!(
            verdict.is_a_below_b(),
            "mu = 1 should be strictly fairer than mu = 0: {verdict}"
        );
    } else {
        // Smoke scale: the direction must not invert with significance.
        assert!(
            !matches!(
                verdict,
                OrderingVerdict::Ordered {
                    a_below_b: false,
                    ..
                }
            ),
            "mu = 0 must never be significantly fairer than mu = 1: {verdict}"
        );
        assert!(paired.mean_diff() < 0.05, "endpoint trend lost: {verdict}");
    }
}

/// Fig. 3's two-sided trade-off between ES and the share-based strategies on
/// random PTGs: ES is at least as fair as PS-work, while PS-work achieves
/// the better (relative) makespans under contention.
fn check_es_vs_share_based_gap(scale: Scale) {
    let config = campaign(
        scale,
        std::sync::Arc::new(mcsched::workload::GeneratorSource::from_class(
            PtgClass::Random,
        )),
        &["ps-work", "es"],
    );
    let result = run_campaign(&config).unwrap();

    let fairness = result
        .paired_unfairness(8, "ES", "PS-work")
        .expect("cells share scenarios");
    let fairness_verdict = fairness.verdict(&ci_config());
    let speed = result
        .paired_relative_makespan(8, "PS-work", "ES")
        .expect("cells share scenarios");
    let speed_verdict = speed.verdict(&ci_config());
    eprintln!(
        "fig3 ES vs PS-work ({} pairs): unfairness diff {:+.4} ({fairness_verdict}), \
         PS-work vs ES rel. makespan diff {:+.4} ({speed_verdict})",
        fairness.len(),
        fairness.mean_diff(),
        speed.mean_diff(),
    );

    // ES must never be significantly less fair than PS-work, and PS-work
    // never significantly slower than ES.
    assert!(
        !matches!(
            fairness_verdict,
            OrderingVerdict::Ordered {
                a_below_b: false,
                ..
            }
        ),
        "ES significantly less fair than PS-work: {fairness_verdict}"
    );
    assert!(
        !matches!(
            speed_verdict,
            OrderingVerdict::Ordered {
                a_below_b: false,
                ..
            }
        ),
        "PS-work significantly slower than ES: {speed_verdict}"
    );
    if scale.slack <= 1.0 {
        // Measured at paper scale (400 pairs, seed 0x5EED): ES is strictly
        // fairer (CI [-0.074, -0.006], p = 0.031) while the PS-work makespan
        // edge is a small negative mean (-0.015) whose CI still touches zero
        // (CI [-0.040, +0.009], p = 0.58). Assert exactly that: a strict
        // fairness ordering, and a makespan gap bounded by the measured band.
        assert!(
            fairness_verdict.is_a_below_b(),
            "ES should be strictly fairer than PS-work at paper scale: {fairness_verdict}"
        );
        let speed_ci = speed_verdict.ci();
        assert!(
            speed.mean_diff() < 0.02 && speed_ci.hi < 0.05,
            "PS-work's relative-makespan edge over ES regressed: {speed_verdict}"
        );
    }
}

// ---------------------------------------------------------------------------
// Smoke subset: always on.
// ---------------------------------------------------------------------------

#[test]
fn smoke_fig3_wps_vs_ps_ci_is_deterministic_and_in_band() {
    check_fig3_wps_vs_ps(SMOKE);
}

#[test]
fn smoke_mu_endpoint_ordering_does_not_invert() {
    check_mu_endpoint_ordering(SMOKE);
}

#[test]
fn smoke_es_vs_share_based_gap() {
    check_es_vs_share_based_gap(SMOKE);
}

#[test]
fn smoke_verdicts_are_reproducible_across_processes() {
    // The full chain — scenario draws, paired evaluation, bootstrap — is a
    // pure function of the configured seeds: two in-process runs must agree
    // bit-for-bit, which is what makes the paper-scale verdicts recordable
    // in the ROADMAP at all.
    let a = fig3_wps_vs_ps(SMOKE);
    let b = fig3_wps_vs_ps(SMOKE);
    assert_eq!(a, b);
    assert_eq!(a.verdict(&ci_config()), b.verdict(&ci_config()));
}

// ---------------------------------------------------------------------------
// Paper scale: opt-in via `--ignored` or MCSCHED_CONFORMANCE=1.
// ---------------------------------------------------------------------------

#[test]
#[ignore = "paper scale (minutes); run with --ignored or MCSCHED_CONFORMANCE=1"]
fn paper_scale_fig3_wps_vs_ps_ci() {
    check_fig3_wps_vs_ps(PAPER);
}

#[test]
#[ignore = "paper scale (minutes); run with --ignored or MCSCHED_CONFORMANCE=1"]
fn paper_scale_mu_endpoint_ordering() {
    check_mu_endpoint_ordering(PAPER);
}

#[test]
#[ignore = "paper scale (minutes); run with --ignored or MCSCHED_CONFORMANCE=1"]
fn paper_scale_es_vs_share_based_gap() {
    check_es_vs_share_based_gap(PAPER);
}

/// Environment-variable driver for the paper-scale tier: a plain `cargo
/// test` stays fast, `MCSCHED_CONFORMANCE=1 cargo test --test
/// paper_conformance` runs everything without `--ignored` plumbing (useful
/// in CI matrices where the test filter is fixed).
#[test]
fn conformance_tier_via_env() {
    if !conformance_enabled() {
        eprintln!("paper-scale conformance skipped (set MCSCHED_CONFORMANCE=1 to enable)");
        return;
    }
    check_fig3_wps_vs_ps(PAPER);
    check_mu_endpoint_ordering(PAPER);
    check_es_vs_share_based_gap(PAPER);
}
