//! Integration tests for the `mcsched-workload` subsystem: trace round-trips
//! must preserve schedules bit-exactly, generation must be deterministic per
//! seed, and invalid workloads must be rejected at every boundary.

use mcsched::exp::{run_campaign, CampaignConfig};
use mcsched::prelude::*;
use std::sync::Arc;

fn quick_campaign() -> CampaignConfig {
    CampaignConfig {
        ptg_counts: vec![2, 4],
        combinations: 2,
        strategies: CampaignConfig::policies(&[
            ConstraintStrategy::EqualShare,
            ConstraintStrategy::Proportional(Characteristic::Work),
        ]),
        threads: 2,
        ..CampaignConfig::paper(PtgClass::Random)
    }
}

/// Records every workload of a campaign configuration, mirroring the
/// `--export-trace` request list.
fn record_trace(config: &CampaignConfig) -> Trace {
    let label = config.source.short_label();
    let requests: Vec<WorkloadRequest> = config
        .ptg_counts
        .iter()
        .flat_map(|&count| {
            mcsched::exp::combo_requests(&label, count, config.combinations, config.seed)
        })
        .collect();
    Trace::record(config.source.as_ref(), &requests, config.seed).unwrap()
}

#[test]
fn trace_round_trip_preserves_schedule_output() {
    // Generate → export JSON → import → the replayed campaign must produce
    // identical reports (the acceptance criterion of the subsystem).
    let live_config = quick_campaign();
    let live = run_campaign(&live_config).unwrap();

    let trace = record_trace(&live_config);
    let imported = Trace::from_json(&trace.to_json()).unwrap();
    assert_eq!(trace, imported);

    let replay_config = CampaignConfig {
        source: Arc::new(TraceSource::new(imported)),
        ..quick_campaign()
    };
    let replayed = run_campaign(&replay_config).unwrap();
    assert_eq!(live, replayed);
}

#[test]
fn single_workload_trace_round_trip_schedules_identically() {
    // Down at the scheduler level: one workload exported and re-imported
    // produces the same evaluated run, slowdown by slowdown.
    let catalog = WorkloadCatalog::builtin();
    let source = catalog
        .resolve("daggen@n=20,width=0.5/poisson@lambda=0.001")
        .unwrap();
    let request = WorkloadRequest::new(0xABCDEF, 4, "rt");
    let workload = source.generate(&request).unwrap();

    let trace = Trace::record(source.as_ref(), std::slice::from_ref(&request), 1).unwrap();
    let imported = Trace::from_json(&trace.to_json()).unwrap();
    let replayed = TraceSource::new(imported).generate(&request).unwrap();
    assert_eq!(workload, replayed);

    let platform = grid5000::lille();
    let scheduler = ConcurrentScheduler::builder().build().unwrap();
    let live = scheduler.evaluate(&platform, &workload).unwrap();
    let again = scheduler.evaluate(&platform, &replayed).unwrap();
    assert_eq!(live.run.global_makespan, again.run.global_makespan);
    assert_eq!(live.fairness.slowdowns, again.fairness.slowdowns);
    assert_eq!(live.fairness.unfairness, again.fairness.unfairness);
}

#[test]
fn generators_are_deterministic_across_two_runs_with_the_same_seed() {
    let catalog = WorkloadCatalog::builtin();
    for spec in [
        "random",
        "daggen@n=50,width=0.2,regularity=0.2,density=0.8,jump=4",
        "fft@points=8",
        "strassen",
        "random+strassen/uniform@lo=1,hi=10",
        "poisson@lambda=0.1",
    ] {
        let source = catalog.resolve(spec).unwrap();
        let request = WorkloadRequest::new(2024, 5, "det");
        let a = source.generate(&request).unwrap();
        let b = source.generate(&request).unwrap();
        assert_eq!(a, b, "spec `{spec}` is not deterministic");
        // A different seed must change the draws.
        let c = source
            .generate(&WorkloadRequest::new(2025, 5, "det"))
            .unwrap();
        assert_ne!(a.ptgs(), c.ptgs(), "spec `{spec}` ignores the seed");
    }
}

#[test]
fn workload_released_rejects_invalid_release_times() {
    // The satellite fix: non-finite or negative release times must be
    // rejected with `InvalidConfig`, never silently accepted — at the API
    // boundary and through trace import alike.
    let mk = || {
        let mut b = PtgBuilder::new("app");
        b.add_task(DataParallelTask::new(
            "t",
            5.0e6,
            CostModel::MatrixProduct,
            0.1,
        ));
        b.build().unwrap()
    };
    for bad in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert!(
            matches!(
                Workload::released(vec![mk()], vec![bad]),
                Err(SchedError::InvalidConfig(_))
            ),
            "release time {bad} must be rejected"
        );
    }
    // Valid times are accepted and preserved.
    let w = Workload::released(vec![mk(), mk()], vec![0.0, 3.5]).unwrap();
    assert_eq!(w.release_times(), &[0.0, 3.5]);

    // A trace that smuggles a NaN release time is rejected on import.
    let source = GeneratorSource::new(AppGenerator::Strassen);
    let trace = Trace::record(&source, &[WorkloadRequest::new(3, 1, "s-0")], 3).unwrap();
    let text = trace
        .to_json()
        .replacen("\"release\":0", "\"release\":1e999", 1);
    assert!(matches!(
        Trace::from_json(&text),
        Err(SchedError::InvalidConfig(_))
    ));
}

#[test]
fn catalog_specs_resolve_from_the_facade() {
    let catalog = WorkloadCatalog::builtin();
    let source = catalog.resolve("daggen@n=50,width=0.5").unwrap();
    let w = source
        .generate(&WorkloadRequest::new(7, 3, "facade"))
        .unwrap();
    assert_eq!(w.len(), 3);
    for ptg in w.ptgs() {
        assert_eq!(ptg.num_tasks(), 50);
    }
    assert!(matches!(
        catalog.resolve("nope"),
        Err(SchedError::UnknownPolicy {
            kind: PolicyKind::WorkloadSource,
            ..
        })
    ));
}

#[test]
fn trace_round_trip_is_lossless_for_arbitrary_daggen_workloads() {
    // Property, on the QuickCheck harness: whatever (bounded) DAGGEN
    // configuration, arrival process and seed, export → JSON → import is
    // lossless and the replayed trace regenerates the workload bit-exactly.
    // Counterexamples shrink by halving (smaller graphs, fewer apps) and the
    // failure message prints the reproducing seed.
    use rand::Rng;
    QuickCheck::new(0x77ACE).cases(12).run(|rng, size| {
        let n = rng.gen_range(4..=(size as usize).clamp(4, 40));
        let width = [0.2, 0.5, 0.8][rng.gen_range(0..3usize)];
        let arrival =
            ["", "/poisson@lambda=0.01", "/bursty@burst=2,gap=100"][rng.gen_range(0..3usize)];
        let spec = format!("daggen@n={n},width={width}{arrival}");
        let source = WorkloadCatalog::builtin().resolve(&spec).unwrap();

        let apps = rng.gen_range(1..=((size as usize).clamp(1, 4)));
        let request = WorkloadRequest::new(rng.gen_range(0..u64::MAX), apps, "prop");
        let live = source.generate(&request).unwrap();

        let trace = Trace::record(
            source.as_ref(),
            std::slice::from_ref(&request),
            request.seed,
        )
        .unwrap();
        let imported = Trace::from_json(&trace.to_json()).unwrap();
        assert_eq!(trace, imported, "JSON round trip must be lossless ({spec})");

        let replayed = TraceSource::new(imported).generate(&request).unwrap();
        assert_eq!(live, replayed, "replay must be bit-exact ({spec})");
        assert_eq!(replayed.len(), apps);
    });
}

#[test]
fn timed_workloads_flow_through_the_scheduler() {
    // Arrival processes must reach the simulation: a workload with staggered
    // releases cannot finish earlier than its last release time.
    let catalog = WorkloadCatalog::builtin();
    let source = catalog.resolve("strassen/bursty@burst=1,gap=500").unwrap();
    let workload = source
        .generate(&WorkloadRequest::new(11, 3, "timed"))
        .unwrap();
    assert_eq!(workload.release_times(), &[0.0, 500.0, 1000.0]);
    let scheduler = ConcurrentScheduler::builder().build().unwrap();
    let run = scheduler.schedule(&grid5000::lille(), &workload).unwrap();
    assert!(run.global_makespan >= 1000.0);
}
