//! Qualitative properties reported in the paper's evaluation (Section 7),
//! checked on reduced workloads: the *shape* of the results (who is fairer,
//! who is faster) rather than the absolute numbers.

use mcsched::exp::{run_campaign, run_mu_sweep, CampaignConfig, MuSweepConfig};
use mcsched::prelude::*;

/// A small but non-trivial campaign: 3 combinations × 4 platforms × 4 PTGs.
fn small_campaign(class: PtgClass) -> CampaignConfig {
    CampaignConfig {
        ptg_counts: vec![4],
        combinations: 3,
        ..CampaignConfig::paper(class)
    }
}

#[test]
fn equal_share_is_fairer_than_selfish_on_random_ptgs() {
    let result = run_campaign(&small_campaign(PtgClass::Random)).unwrap();
    let es = result.point(4, "ES").expect("ES evaluated").unfairness;
    let s = result.point(4, "S").expect("S evaluated").unfairness;
    assert!(
        es <= s * 1.10 + 0.05,
        "ES (unfairness {es:.3}) should not be clearly less fair than S ({s:.3})"
    );
}

#[test]
fn weighting_towards_equal_share_does_not_clearly_hurt_fairness() {
    // The paper's WPS construction exists precisely because pure PS-work is
    // unfair to small applications: mixing in the equal share must not make
    // things clearly less fair. (The paper's stronger claims — strict
    // orderings between individual strategies — are sensitive to the width
    // distribution of the DAG generator and to sample size; at this reduced
    // sample only the weaker, noise-tolerant form is asserted.)
    let config = CampaignConfig {
        ptg_counts: vec![8],
        combinations: 3,
        ..CampaignConfig::paper(PtgClass::Random)
    };
    let result = run_campaign(&config).unwrap();
    let ps_work = result.point(8, "PS-work").unwrap().unfairness;
    let wps_work = result.point(8, "WPS-work").unwrap().unfairness;
    let es = result.point(8, "ES").unwrap().unfairness;
    // Deliberately a *bound*, not the paper's strict WPS < PS ordering. The
    // ordering was re-probed at paper scale (25 combinations × 4 platforms =
    // 100 runs per cell, seeds 0x5EED/1/42/7, via
    // `fig3_random --combinations 25 --ptgs 8 --strategies ps-work,wps-work,es`):
    // WPS-work's unfairness exceeds PS-work's by a systematic 0.01–0.07 on
    // every seed with this legacy `n^width` generator. Re-probed with the
    // width-calibrated DAGGEN generator (`--workload daggen-grid`, same
    // scale and seeds): the gap shrinks to −0.007…+0.047 and changes sign
    // across seeds, i.e. the calibration removes the *systematic* reversal
    // but the strict ordering still does not reproduce cleanly (numbers
    // recorded in ROADMAP.md; see also
    // `calibrated_generator_narrows_the_wps_vs_ps_gap` below). The µ
    // endpoints (µ = 0 vs µ = 1), where the paper's signal is unambiguous,
    // are asserted strictly in `mu_interpolates_fairness_against_makespan`;
    // ES ≤ PS-work is asserted below and holds on every probed seed.
    assert!(
        wps_work <= ps_work * 1.15 + 0.05,
        "WPS-work ({wps_work:.3}) should not be clearly less fair than PS-work ({ps_work:.3})"
    );
    assert!(
        es <= ps_work + 0.05,
        "ES ({es:.3}) should be at least as fair as PS-work ({ps_work:.3})"
    );
}

#[test]
fn calibrated_generator_narrows_the_wps_vs_ps_gap() {
    // Same shape as `weighting_towards_equal_share_does_not_clearly_hurt_
    // fairness`, but drawing the random PTGs from the width-calibrated
    // DAGGEN generator (`daggen-grid`) and judging the gap through the
    // paired-replication machinery instead of re-deriving ad-hoc per-seed
    // deltas: all strategies see identical draws (common random numbers), so
    // the per-run unfairness vectors pair index-for-index and the statement
    // becomes a CI statement. Measured at paper scale (400 pairs, 4
    // replications of 100 runs, seed 0x5EED): mean diff +0.016, 95% CI
    // [-0.013, +0.047] — the legacy generator's systematic 0.01–0.07 excess
    // is gone (see `tests/paper_conformance.rs` and ROADMAP.md). At this
    // reduced scale we assert the correspondingly looser paired bound.
    let source = WorkloadCatalog::builtin()
        .resolve("daggen-grid")
        .expect("calibrated spec resolves");
    let config = CampaignConfig {
        source,
        ptg_counts: vec![8],
        combinations: 3,
        replications: 2,
        ..CampaignConfig::paper(PtgClass::Random)
    };
    let result = run_campaign(&config).unwrap();
    let paired = result
        .paired_unfairness(8, "WPS-work", "PS-work")
        .expect("cells share scenarios");
    assert_eq!(
        paired.len(),
        24,
        "3 combinations x 4 platforms x 2 replications"
    );
    let ci = paired.bootstrap_ci(&BootstrapConfig::seeded(config.seed));
    assert!(
        ci.lo > -0.15 && ci.hi < 0.15,
        "calibrated WPS-work should track PS-work closely: mean diff {:+.4}, CI {ci}",
        paired.mean_diff()
    );
    // The interval is seeded and therefore reproducible bit-for-bit.
    assert_eq!(
        ci,
        paired.bootstrap_ci(&BootstrapConfig::seeded(config.seed))
    );
}

#[test]
fn proportional_work_achieves_competitive_makespans_under_contention() {
    // Figure 3 (right): with many concurrent PTGs the proportional strategies
    // produce the shortest schedules while ES pays for its wasted shares.
    let config = CampaignConfig {
        ptg_counts: vec![8],
        combinations: 3,
        ..CampaignConfig::paper(PtgClass::Random)
    };
    let result = run_campaign(&config).unwrap();
    let ps_work = result.point(8, "PS-work").unwrap().relative_makespan;
    let es = result.point(8, "ES").unwrap().relative_makespan;
    let s = result.point(8, "S").unwrap().relative_makespan;
    assert!(
        ps_work <= es + 0.05,
        "PS-work (rel. makespan {ps_work:.3}) should not be slower than ES ({es:.3})"
    );
    assert!(
        ps_work <= s + 0.05,
        "PS-work (rel. makespan {ps_work:.3}) should not be slower than S ({s:.3})"
    );
}

#[test]
fn mu_interpolates_fairness_against_makespan() {
    // Figure 2: unfairness should trend down as mu goes from 0 to 1; the
    // paper also reports a makespan increase, which on reduced workloads we
    // only require not to be a large improvement.
    let config = MuSweepConfig {
        mu_values: vec![0.0, 1.0],
        ptg_counts: vec![8],
        combinations: 3,
        ..MuSweepConfig::paper()
    };
    let points = run_mu_sweep(&config).unwrap();
    let at = |mu: f64| points.iter().find(|p| (p.mu - mu).abs() < 1e-9).unwrap();
    let ps = at(0.0);
    let es = at(1.0);
    assert!(
        es.unfairness <= ps.unfairness + 0.05,
        "mu=1 (unfairness {:.3}) should be at least as fair as mu=0 ({:.3})",
        es.unfairness,
        ps.unfairness
    );
    assert!(
        es.makespan >= ps.makespan * 0.85,
        "mu=1 (makespan {:.1}) should not be dramatically shorter than mu=0 ({:.1})",
        es.makespan,
        ps.makespan
    );
}

#[test]
fn unfairness_grows_with_the_number_of_concurrent_ptgs() {
    // The paper notes that unfairness, being a sum over applications, grows
    // with the number of concurrent PTGs.
    let config = CampaignConfig {
        ptg_counts: vec![2, 8],
        combinations: 3,
        strategies: CampaignConfig::policies(&[ConstraintStrategy::EqualShare]),
        ..CampaignConfig::paper(PtgClass::Random)
    };
    let result = run_campaign(&config).unwrap();
    let few = result.point(2, "ES").unwrap().unfairness;
    let many = result.point(8, "ES").unwrap().unfairness;
    assert!(
        many >= few,
        "unfairness with 8 PTGs ({many:.3}) should exceed unfairness with 2 ({few:.3})"
    );
}

#[test]
fn fft_campaign_is_overall_fairer_than_random_campaign() {
    // Figure 4: the regularity of FFT graphs yields lower unfairness than the
    // random PTGs of Figure 3 for the same strategies.
    let random = run_campaign(&small_campaign(PtgClass::Random)).unwrap();
    let fft = run_campaign(&small_campaign(PtgClass::Fft)).unwrap();
    let avg = |r: &mcsched::exp::CampaignResult| {
        let pts: Vec<f64> = r.points.iter().map(|p| p.unfairness).collect();
        pts.iter().sum::<f64>() / pts.len() as f64
    };
    assert!(
        avg(&fft) <= avg(&random) * 1.25,
        "FFT unfairness ({:.3}) should not dramatically exceed random ({:.3})",
        avg(&fft),
        avg(&random)
    );
}

#[test]
fn best_strategy_has_relative_makespan_close_to_one() {
    let result = run_campaign(&small_campaign(PtgClass::Strassen)).unwrap();
    for &count in &result.ptg_counts() {
        let best = result
            .points
            .iter()
            .filter(|p| p.num_ptgs == count)
            .map(|p| p.relative_makespan)
            .fold(f64::INFINITY, f64::min);
        assert!(best >= 1.0 - 1e-9);
        assert!(
            best <= 1.15,
            "for {count} PTGs the best strategy should be near the per-run optimum (got {best:.3})"
        );
    }
}
