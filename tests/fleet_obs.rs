//! Fleet observability under sharded campaigns — the cross-process half of
//! the obs layer:
//!
//! * a 3-way sharded campaign run with an obs dir per shard records a
//!   manifest (phase `done`, shared config digest + salt) and a complete
//!   heartbeat per shard, plus the per-shard journal/metrics exports;
//! * per-shard journals are deterministic — the same shard rerun produces
//!   byte-identical `run-<shard>.journal.jsonl` bytes;
//! * `merge_obs_dirs` (the library half of `mcsched-obs-merge`) yields one
//!   fleet journal + metrics snapshot byte-identical across merge orders;
//! * `render_snapshot` (the library half of `mcsched-top --snapshot`) is
//!   byte-identical for a finished fleet regardless of directory order or
//!   observation time;
//! * stale `.tmp` debris from a killed shard is reported as debris, never
//!   rendered as a live shard.
//!
//! Tracing and the metrics registry are process-global, so every test
//! serializes through one mutex and resets both on entry.

use mcsched::exp::{run_campaign, CampaignConfig};
use mcsched::obs::fleet::{merge_obs_dirs, render_snapshot, scan_fleet, SnapshotOptions};
use mcsched::obs::{metrics, span, ObsOptions, RunPhase};
use mcsched::ptg::gen::PtgClass;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes tests that flip the process-global tracing subscriber or the
/// metrics registry.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A unique temporary directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "mcsched-fleet-obs-{tag}-{}-{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }

    fn path(&self) -> PathBuf {
        self.0.clone()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The same small-but-not-trivial campaign shape the shard-merge tier uses:
/// 2 PTG counts × 2 combinations × 4 platforms × 2 replications × 6
/// strategies.
fn campaign_config() -> CampaignConfig {
    CampaignConfig {
        ptg_counts: vec![2, 4],
        combinations: 2,
        replications: 2,
        ..CampaignConfig::quick(PtgClass::Strassen)
    }
}

/// Runs shard `index`/3 of the shared campaign with full fleet obs into
/// `dir`: manifest + heartbeat from the campaign itself, journal + metrics
/// exports from the `ObsOptions` teardown (what every binary does). The
/// caller holds the obs lock.
fn run_shard(dir: &TempDir, index: usize) {
    span::reset();
    metrics::reset();
    let opts = ObsOptions {
        dir: Some(dir.path()),
        run: Some(format!("{index}of3")),
        quiet: true,
        ..ObsOptions::default()
    };
    opts.activate();
    let mut config = campaign_config();
    config.obs_dir = Some(dir.path());
    config.shard = Some((index, 3));
    run_campaign(&config).expect("sharded campaign runs");
    opts.finish();
    span::reset();
}

/// The three per-shard record files of one finished shard.
fn shard_files(dir: &TempDir, index: usize) -> (String, String, String) {
    let read = |suffix: &str| {
        let path = dir.path().join(format!("run-{index}of3.{suffix}"));
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {}: {e}", path.display()))
    };
    (
        read("manifest.json"),
        read("heartbeat.json"),
        read("journal.jsonl"),
    )
}

#[test]
fn sharded_campaign_records_manifests_heartbeats_and_exports() {
    let _lock = obs_lock();
    let shards: Vec<TempDir> = (0..3).map(|i| TempDir::new(&format!("rec{i}"))).collect();
    for (index, dir) in shards.iter().enumerate() {
        run_shard(dir, index);
    }

    let mut digests = Vec::new();
    for (index, dir) in shards.iter().enumerate() {
        let (manifest_text, heartbeat_text, journal) = shard_files(dir, index);
        let manifest =
            mcsched::obs::RunManifest::parse_json(&manifest_text).expect("manifest parses");
        assert_eq!(manifest.shard, (index, 3));
        assert_eq!(manifest.phase, RunPhase::Done);
        assert_eq!(manifest.salt, mcsched::runtime::CACHE_SALT);
        assert_eq!(manifest.pid, std::process::id());
        assert!(
            manifest.label.contains("strassen"),
            "label: {}",
            manifest.label
        );
        digests.push(manifest.config_digest);

        let heartbeat =
            mcsched::obs::Heartbeat::parse_json(&heartbeat_text).expect("heartbeat parses");
        assert_eq!(heartbeat.points_done, heartbeat.points_total);
        assert!(heartbeat.points_total > 0);
        assert!(heartbeat.cells_done > 0, "the shard evaluated cells");
        assert!(!heartbeat.detail.is_empty());

        assert!(!journal.is_empty(), "shard exported a journal");
        let metrics_text =
            std::fs::read_to_string(dir.path().join(format!("run-{index}of3.metrics.json")))
                .expect("shard exported metrics");
        let snapshot =
            mcsched::obs::metrics::MetricsSnapshot::parse_json(&metrics_text).expect("parses");
        assert!(!snapshot.counters.is_empty(), "metrics recorded counters");
    }
    assert_eq!(digests[0], digests[1], "shards share the config digest");
    assert_eq!(digests[1], digests[2], "shards share the config digest");

    // Rerunning a shard into a fresh directory reproduces its journal
    // byte-for-byte: the per-shard export is deterministic.
    let again = TempDir::new("rec1-again");
    run_shard(&again, 1);
    let (_, _, journal_a) = shard_files(&shards[1], 1);
    let (_, _, journal_b) = shard_files(&again, 1);
    assert_eq!(journal_a, journal_b, "per-shard journals are deterministic");

    // Obs-merge: one fleet journal + metrics snapshot, byte-identical
    // across merge orders (the `mcsched-obs-merge` contract).
    let dirs: Vec<PathBuf> = shards.iter().map(TempDir::path).collect();
    let forward = merge_obs_dirs(&dirs).expect("fleet merges");
    let reversed: Vec<PathBuf> = dirs.iter().rev().cloned().collect();
    let backward = merge_obs_dirs(&reversed).expect("fleet merges in any order");
    assert_eq!(forward.shards, 3);
    assert_eq!(
        forward.journal, backward.journal,
        "merge order must not matter"
    );
    assert_eq!(
        forward.metrics.render_json(),
        backward.metrics.render_json(),
        "merged metrics must not depend on merge order"
    );
    assert!(
        forward.warnings.is_empty(),
        "all shards finished: {:?}",
        forward.warnings
    );
    assert!(
        forward.journal.lines().count() >= 3,
        "fleet journal has content"
    );
    assert_eq!(forward.salt, mcsched::runtime::CACHE_SALT);

    // Snapshot rendering (the `mcsched-top --snapshot` contract): a
    // finished fleet renders byte-identically regardless of directory
    // order or observation time.
    let frame = render_snapshot(
        &scan_fleet(&dirs),
        &SnapshotOptions {
            now_ms: 1_000_000,
            stale_after_ms: 30_000,
        },
    );
    let later = render_snapshot(
        &scan_fleet(&reversed),
        &SnapshotOptions {
            now_ms: 9_000_000_000,
            stale_after_ms: 30_000,
        },
    );
    assert_eq!(frame, later, "finished fleets render deterministically");
    assert!(frame.contains("fleet: 3 shard(s)"), "frame:\n{frame}");
    assert!(frame.contains("3 done"), "frame:\n{frame}");
    assert!(
        frame.contains("[0of3]") && frame.contains("[2of3]"),
        "frame:\n{frame}"
    );
    assert!(frame.contains("fleet cells:"), "frame:\n{frame}");
    assert!(frame.contains("merged metrics"), "frame:\n{frame}");
    assert!(
        !frame.contains("debris"),
        "clean fleet, no debris:\n{frame}"
    );
}

#[test]
fn killed_shard_debris_is_reported_not_rendered_as_progress() {
    let _lock = obs_lock();
    let dir = TempDir::new("debris");
    run_shard(&dir, 0);

    // A killed shard's mid-write leftovers: an atomically-staged temp file
    // that never got renamed.
    let debris = dir.path().join("run-1of3.heartbeat.json.4242.7.tmp");
    std::fs::write(&debris, "{\"points_done\":").unwrap();

    let fleet = scan_fleet(&[dir.path()]);
    assert_eq!(fleet.shards.len(), 1, "the temp file is not a shard");
    assert_eq!(fleet.debris.len(), 1);
    let frame = render_snapshot(
        &fleet,
        &SnapshotOptions {
            now_ms: 1_000_000,
            stale_after_ms: 30_000,
        },
    );
    assert!(frame.contains("fleet: 1 shard(s)"), "frame:\n{frame}");
    assert!(
        frame.contains("debris: 1 stale temp file(s)"),
        "frame:\n{frame}"
    );
    assert!(frame.contains(".tmp"), "frame names the leftover:\n{frame}");
}
