//! Determinism and bounded-memory guarantees of the online scheduling
//! service (`mcsched-online`):
//!
//! * campaign tables and CSVs are **byte-for-byte identical** at 1, 2 and 8
//!   worker threads (cells are position-seeded and collected in index
//!   order);
//! * a re-run with the same seed reproduces the full report exactly,
//!   while a different seed diverges;
//! * an **overload** run (arrival rate far above sustainable) completes
//!   with a non-zero, reproducible shed count and a bounded pending queue;
//! * a run streaming 10⁵ jobs holds at most `max_in_flight` materialised
//!   PTGs at any moment — the bounded-memory contract of the lazy stream
//!   (stronger than the required `queue_cap + in_flight`).

use mcsched::online::{
    report, run_campaign, CampaignSpec, OnlineConfig, OnlineScheduler, ReschedulePolicy,
};
use mcsched::prelude::*;
use std::sync::Arc;

fn source(lambda: f64, tasks: usize) -> Arc<dyn WorkloadSource> {
    Arc::new(
        GeneratorSource::new(AppGenerator::Daggen(DaggenConfig::new(tasks)))
            .with_arrival(ArrivalProcess::Poisson { lambda }),
    )
}

fn spec(threads: usize) -> CampaignSpec {
    let mut spec = CampaignSpec::new(vec![
        ConstraintStrategy::EqualShare,
        ConstraintStrategy::Selfish,
    ]);
    spec.replications = 2;
    spec.threads = threads;
    spec.base.max_jobs = 25;
    spec.base.queue_cap = 6;
    spec.base.max_in_flight = 3;
    spec
}

#[test]
fn campaign_bytes_are_identical_at_1_2_and_8_threads() {
    let platform = grid5000::lille();
    let source = source(0.02, 10);
    let runs: Vec<(String, String)> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let result = run_campaign(&platform, &source, &spec(threads)).unwrap();
            (
                report::table_campaign(&result),
                report::csv_campaign(&result),
            )
        })
        .collect();
    assert_eq!(runs[0], runs[1], "1 vs 2 threads");
    assert_eq!(runs[0], runs[2], "1 vs 8 threads");
    // The table carries real content, not a degenerate empty render.
    assert!(runs[0].0.contains("ES"));
    assert!(runs[0].1.lines().count() > 4);
}

#[test]
fn same_seed_reproduces_the_report_and_different_seeds_diverge() {
    let platform = grid5000::nancy();
    let source = source(0.01, 12);
    let config = OnlineConfig {
        max_jobs: 30,
        ..OnlineConfig::default()
    };
    let sched = OnlineScheduler::new(&platform, config.clone()).unwrap();
    let a = sched.run(source.as_ref()).unwrap();
    let b = sched.run(source.as_ref()).unwrap();
    assert_eq!(a, b, "same seed, same bytes");
    assert_eq!(
        report::csv_jobs(&a),
        report::csv_jobs(&b),
        "job CSVs compare every f64 exactly"
    );

    let other = OnlineScheduler::new(
        &platform,
        OnlineConfig {
            seed: config.seed + 1,
            ..config
        },
    )
    .unwrap()
    .run(source.as_ref())
    .unwrap();
    assert_ne!(a.jobs, other.jobs, "a different seed draws a different run");
}

#[test]
fn overload_completes_with_reproducible_sheds() {
    let platform = grid5000::lille();
    // ~1 job/s of 15-task PTGs is far above lille's sustainable rate.
    let source = source(1.0, 15);
    let config = OnlineConfig {
        max_jobs: 150,
        queue_cap: 5,
        max_in_flight: 2,
        ..OnlineConfig::default()
    };
    let sched = OnlineScheduler::new(&platform, config).unwrap();
    let a = sched.run(source.as_ref()).unwrap();
    let b = sched.run(source.as_ref()).unwrap();
    assert!(
        a.counters.shed > 0,
        "overload must shed (got {} arrivals, {} shed)",
        a.counters.arrivals,
        a.counters.shed
    );
    assert_eq!(a.counters.shed, b.counters.shed, "sheds are deterministic");
    assert_eq!(a, b);
    assert!(a.counters.peak_pending <= 5, "pending queue stays bounded");
    assert_eq!(
        a.counters.arrivals,
        a.counters.completed + a.counters.shed,
        "every arrival is either completed or shed"
    );
}

#[test]
fn hundred_thousand_streamed_jobs_run_in_bounded_memory() {
    let platform = grid5000::lille();
    // Single-task PTGs keep the debug-mode runtime tractable while still
    // exercising 10⁵ admission/completion/reschedule events end to end.
    let source = source(2.0, 1);
    let config = OnlineConfig {
        max_jobs: 100_000,
        queue_cap: 16,
        max_in_flight: 4,
        reschedule: ReschedulePolicy::OnCompletion,
        ..OnlineConfig::default()
    };
    let sched = OnlineScheduler::new(&platform, config).unwrap();
    let report = sched.run(source.as_ref()).unwrap();
    assert_eq!(report.counters.arrivals, 100_000);
    assert_eq!(
        report.counters.completed + report.counters.shed,
        100_000,
        "the stream drains"
    );
    assert!(
        report.counters.peak_resident <= 4,
        "at most max_in_flight PTGs materialised at once (got {})",
        report.counters.peak_resident
    );
    assert!(
        report.counters.peak_resident + report.counters.peak_pending <= 16 + 4,
        "stronger than the queue_cap + in_flight bound"
    );
    assert!(report.counters.completed > 0);
}
