//! The observability layer's two contracts:
//!
//! * **Tracing observes, never participates** — the figure tables and CSVs
//!   are byte-for-byte identical with tracing fully enabled or disabled, at
//!   1, 2 and 8 worker threads (every `f64` compared exactly through the
//!   rendered bytes);
//! * **Exports are valid and reproducible** — the Chrome trace parses as
//!   JSON with a non-empty, span-covered timeline; the JSONL journal (which
//!   deliberately drops wall-clock times and thread ids) is byte-identical
//!   across reruns of the same configuration; the online time-series CSV is
//!   bit-exact across runs at 8 threads.
//!
//! Tracing state is process-global, so every test touching it serializes
//! through one mutex and resets the buffers on entry.

use mcsched::exp::{csv_campaign, run_campaign, table_campaign, CampaignConfig};
use mcsched::obs::{disable_tracing, enable_tracing, export, span};
use mcsched::online;
use mcsched::platform::grid5000;
use mcsched::ptg::gen::PtgClass;
use mcsched::workload::json::Json;
use mcsched::workload::WorkloadCatalog;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes tests that flip the process-global tracing subscriber.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A small-but-not-trivial campaign exercising the full pipeline: 2 PTG
/// counts × 2 combinations × 4 platforms × 6 strategies.
fn campaign_config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        ptg_counts: vec![2, 4],
        combinations: 2,
        threads,
        ..CampaignConfig::quick(PtgClass::Strassen)
    }
}

/// The rendered bytes every figure binary derives from a campaign.
fn campaign_bytes(threads: usize) -> (String, String) {
    let result = run_campaign(&campaign_config(threads)).expect("campaign runs");
    (table_campaign(&result), csv_campaign(&result))
}

#[test]
fn figures_are_byte_identical_with_tracing_on_or_off() {
    let _lock = obs_lock();
    span::reset(); // also disables tracing
    let baseline = campaign_bytes(1);
    enable_tracing();
    for threads in [1, 2, 8] {
        assert_eq!(
            campaign_bytes(threads),
            baseline,
            "tracing must not perturb figure bytes at {threads} threads"
        );
    }
    span::reset();
}

#[test]
fn chrome_trace_is_valid_json_with_a_span_covered_timeline() {
    let _lock = obs_lock();
    span::reset();
    enable_tracing();
    let _ = campaign_bytes(2);
    disable_tracing();
    let dump = span::drain();
    let trace = export::chrome_trace(&dump);
    let doc = Json::parse(&trace).expect("chrome trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "the trace must record spans");
    // Every event carries the Chrome-trace envelope and a known phase tag.
    let mut begins = 0usize;
    let mut ends = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph tag");
        assert!(matches!(ph, "M" | "B" | "E" | "i"), "unknown phase {ph}");
        match ph {
            "B" => begins += 1,
            "E" => ends += 1,
            _ => {}
        }
        if ph != "M" {
            assert!(ev.get("ts").and_then(Json::as_f64).is_some());
            assert!(ev.get("name").and_then(Json::as_str).is_some());
        }
    }
    assert!(begins > 0, "span begins recorded");
    assert_eq!(begins, ends, "every span that opened also closed");
    // The instrumented pipeline names its phases in the timeline.
    for name in ["beta+alloc", "mapping", "simx-execute", "cell-eval"] {
        assert!(
            trace.contains(&format!("\"name\":\"{name}\"")),
            "trace names the `{name}` span"
        );
    }
}

#[test]
fn journal_is_reproducible_for_a_fixed_configuration() {
    let _lock = obs_lock();
    let journal = |threads: usize| {
        span::reset();
        enable_tracing();
        let _ = campaign_bytes(threads);
        disable_tracing();
        export::journal_jsonl(&span::drain())
    };
    let a = journal(2);
    let b = journal(2);
    assert!(!a.is_empty(), "the journal must record events");
    assert_eq!(a, b, "same configuration, same journal bytes");
    // Every line is a standalone JSON object and the file is sorted — the
    // deterministic-order contract the exporter claims.
    let lines: Vec<&str> = a.lines().collect();
    for line in &lines {
        let doc = Json::parse(line).expect("journal line parses");
        assert!(doc.get("event").and_then(Json::as_str).is_some());
        assert!(doc.get("name").and_then(Json::as_str).is_some());
    }
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted, "journal lines are sorted");
    span::reset();
}

#[test]
fn online_series_is_bit_exact_across_runs_at_8_threads() {
    let platform = grid5000::lille();
    let source = WorkloadCatalog::builtin()
        .resolve("daggen@n=8/poisson@lambda=0.01")
        .expect("built-in spec resolves");
    let run = || {
        let mut spec = online::CampaignSpec::new(vec![
            mcsched::core::ConstraintStrategy::EqualShare,
            mcsched::core::ConstraintStrategy::Selfish,
        ]);
        spec.replications = 2;
        spec.threads = 8;
        spec.base.max_jobs = 25;
        spec.base.record_series = true;
        let result = online::run_campaign(&platform, &source, &spec).expect("campaign runs");
        let mut csvs = Vec::new();
        for outcome in &result.outcomes {
            for report in &outcome.reports {
                assert_eq!(report.series.len() as u64, report.reschedules);
                csvs.push(report.series.to_csv());
            }
        }
        csvs
    };
    let a = run();
    let b = run();
    assert!(a.iter().all(|csv| csv.lines().count() > 1));
    assert_eq!(a, b, "per-epoch series must be bit-exact across runs");
}
