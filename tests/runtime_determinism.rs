//! Determinism and resume guarantees of the execution runtime
//! (`mcsched-runtime` + the `mcsched-exp` harnesses running on it):
//!
//! * campaign and µ-sweep output is **byte-for-byte identical** at 1, 2 and
//!   8 worker threads (the pool's deterministic-index-order contract,
//!   asserted on the rendered tables *and* CSVs, which compare every f64
//!   exactly);
//! * a **warm cache** reproduces the cold run byte-for-byte while serving
//!   cells from disk (a poisoned cell value provably reaches the output);
//! * a **killed** run — simulated by a partial cache directory — resumes:
//!   the completed shards are served, only the missing cells are computed,
//!   and the final output equals the never-interrupted run;
//! * `--no-resume` really starts cold, and damaged cache files degrade to
//!   recomputation, never to wrong results.

use mcsched::exp::{run_campaign, run_mu_sweep, CampaignConfig, MuSweepConfig};
use mcsched::ptg::gen::PtgClass;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique temporary directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "mcsched-runtime-determinism-{tag}-{}-{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }

    fn path(&self) -> PathBuf {
        self.0.clone()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small-but-not-trivial campaign: 2 PTG counts × 2 combinations × 4
/// platforms × 2 replications × 6 strategies = 192 cells.
fn campaign_config() -> CampaignConfig {
    CampaignConfig {
        ptg_counts: vec![2, 4],
        combinations: 2,
        replications: 2,
        ..CampaignConfig::quick(PtgClass::Strassen)
    }
}

fn sweep_config() -> MuSweepConfig {
    MuSweepConfig {
        replications: 2,
        ..MuSweepConfig::quick()
    }
}

/// Renders a campaign to its two user-visible byte streams.
fn campaign_bytes(config: &CampaignConfig) -> (String, String) {
    let result = run_campaign(config).expect("campaign runs");
    (
        mcsched::exp::table_campaign(&result),
        mcsched::exp::csv_campaign(&result),
    )
}

fn sweep_bytes(config: &MuSweepConfig) -> (String, String) {
    let points = run_mu_sweep(config).expect("sweep runs");
    (
        mcsched::exp::table_mu_sweep(&points),
        mcsched::exp::csv_mu_sweep(&points),
    )
}

#[test]
fn campaign_output_is_byte_identical_at_1_2_and_8_threads() {
    let mut config = campaign_config();
    config.threads = 1;
    let reference = campaign_bytes(&config);
    for threads in [2, 8] {
        config.threads = threads;
        assert_eq!(
            campaign_bytes(&config),
            reference,
            "campaign output drifted at {threads} threads"
        );
    }
}

#[test]
fn mu_sweep_output_is_byte_identical_at_1_2_and_8_threads() {
    let mut config = sweep_config();
    config.threads = 1;
    let reference = sweep_bytes(&config);
    for threads in [2, 8] {
        config.threads = threads;
        assert_eq!(
            sweep_bytes(&config),
            reference,
            "µ-sweep output drifted at {threads} threads"
        );
    }
}

#[test]
fn warm_cache_reproduces_cold_output_and_serves_every_cell() {
    let dir = TempDir::new("warm");
    let baseline = campaign_bytes(&campaign_config());

    let mut config = campaign_config();
    config.cache_dir = Some(dir.path());
    let cold = campaign_bytes(&config);
    assert_eq!(cold, baseline, "caching must not change the output");

    // Warm run: byte-identical again. Samples compare f64s exactly, so the
    // table/CSV equality proves the on-disk round-trip is bit-exact. (That
    // hits are *served* rather than recomputed is pinned separately by the
    // poisoning assertion in `no_resume_recomputes_…`.)
    let warm = campaign_bytes(&config);
    assert_eq!(warm, baseline, "warm-cache output drifted from cold");

    // The warm output must also hold at a different thread count: cache
    // state and pool width are independent axes.
    config.threads = 8;
    assert_eq!(campaign_bytes(&config), baseline);
}

#[test]
fn kill_and_resume_completes_a_partial_cache_dir() {
    let dir = TempDir::new("resume");
    let full = campaign_config();
    let baseline = campaign_bytes(&full);

    // Simulate an interrupted run: only the first data points (PTG count 2)
    // finished and were flushed before the "kill".
    let mut partial = full.clone();
    partial.ptg_counts = vec![2];
    partial.cache_dir = Some(dir.path());
    let _ = campaign_bytes(&partial);
    assert!(
        std::fs::read_dir(dir.path()).unwrap().count() > 0,
        "the interrupted run left flushed shards behind"
    );

    // Drop in debris a kill could leave: a stale temporary from mid-flush.
    std::fs::write(dir.path().join("shard-00.json.tmp"), "{\"version\":1,tr").unwrap();

    // The resumed full run completes the remaining cells and matches the
    // never-interrupted output byte-for-byte.
    let mut resumed = full.clone();
    resumed.cache_dir = Some(dir.path());
    assert_eq!(campaign_bytes(&resumed), baseline);
    assert!(
        !dir.path().join("shard-00.json.tmp").exists(),
        "stale temporaries are cleaned up on open"
    );
}

#[test]
fn no_resume_recomputes_and_corrupt_shards_degrade_gracefully() {
    let dir = TempDir::new("noresume");
    let full = campaign_config();
    let baseline = campaign_bytes(&full);

    let mut cached = full.clone();
    cached.cache_dir = Some(dir.path());
    let _ = campaign_bytes(&cached);

    // Prove warm cells are truly *served from disk*, not recomputed: poison
    // one cached makespan (keeping the shard valid JSON) and the poison must
    // surface in the warm output.
    let mut poisoned_one = false;
    for entry in std::fs::read_dir(dir.path()).unwrap() {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        if let Some(at) = text.find("\"makespan\":") {
            let start = at + "\"makespan\":".len();
            let end = start + text[start..].find(',').unwrap();
            let mut edited = text.clone();
            edited.replace_range(start..end, "1");
            std::fs::write(&path, edited).unwrap();
            poisoned_one = true;
            break;
        }
    }
    assert!(poisoned_one, "some shard holds a makespan to poison");
    assert_ne!(
        campaign_bytes(&cached),
        baseline,
        "a poisoned cell value must reach the output — hits are served, not verified"
    );

    // --no-resume: the store is cleared first, the run recomputes from
    // scratch, and the output matches again.
    cached.resume = false;
    assert_eq!(campaign_bytes(&cached), baseline);

    // Corrupt every shard in place (truncation). A resumed run must shrug
    // it off — damaged shards are ignored and recomputed — and still match.
    cached.resume = true;
    for entry in std::fs::read_dir(dir.path()).unwrap() {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 3]).unwrap();
    }
    assert_eq!(campaign_bytes(&cached), baseline);
}

#[test]
fn sweep_and_campaign_share_one_cache_directory() {
    // The cell format is shared: pointing both harnesses at one directory
    // must not corrupt either result.
    let dir = TempDir::new("shared");
    let campaign_baseline = campaign_bytes(&campaign_config());
    let sweep_baseline = sweep_bytes(&sweep_config());

    let mut campaign = campaign_config();
    campaign.cache_dir = Some(dir.path());
    let mut sweep = sweep_config();
    sweep.cache_dir = Some(dir.path());

    assert_eq!(campaign_bytes(&campaign), campaign_baseline);
    assert_eq!(sweep_bytes(&sweep), sweep_baseline);
    // Second pass, both warm.
    assert_eq!(campaign_bytes(&campaign), campaign_baseline);
    assert_eq!(sweep_bytes(&sweep), sweep_baseline);
}
