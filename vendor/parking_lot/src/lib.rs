//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! `parking_lot` API (no poisoning, guards returned directly from
//! `lock`/`read`/`write`), implemented over the `std::sync` primitives.
//!
//! Poisoning is translated into a panic propagation: if a thread panicked
//! while holding the lock the next locker panics too, which matches how the
//! workspace uses locks (worker panics are already fatal to a campaign).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: the borrow proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 400);
    }
}
