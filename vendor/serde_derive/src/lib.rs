//! No-op `Serialize`/`Deserialize` derives for the vendored [`serde`]
//! stand-in.
//!
//! The real `serde_derive` generates trait implementations; the vendored
//! `serde` crate instead provides blanket implementations of its marker
//! traits, so these derives only need to accept (and discard) the input.
//! `#[serde(...)]` attributes are registered so existing annotations keep
//! compiling, but they are ignored.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing (the vendored
/// `serde::Serialize` trait is blanket-implemented).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing (the vendored
/// `serde::Deserialize` trait is blanket-implemented).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
