//! Offline stand-in for the `serde` crate.
//!
//! The workspace only uses `serde` for `#[derive(Serialize, Deserialize)]`
//! annotations on its data types — nothing is actually serialized yet (the
//! CSV/table reports are rendered by hand in `mcsched-exp`). This crate
//! keeps those annotations compiling without network access by providing the
//! two marker traits with blanket implementations and re-exporting no-op
//! derives from the vendored `serde_derive`.
//!
//! When a real serialization backend is needed, drop the real `serde` into
//! the workspace `[patch]`/registry and delete this crate: the derive
//! annotations in the codebase are already the real API.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Point {
        x: f64,
        y: f64,
    }

    fn assert_serialize<T: super::Serialize>() {}

    #[test]
    fn derives_compile_and_traits_are_blanket() {
        assert_serialize::<Point>();
        assert_serialize::<Vec<Point>>();
        let p = Point { x: 1.0, y: 2.0 };
        assert_eq!(p, Point { x: 1.0, y: 2.0 });
    }
}
