//! Offline stand-in for `rand_chacha`: a [`ChaCha8Rng`] built on the real
//! ChaCha stream cipher with 8 rounds.
//!
//! The block function is the standard ChaCha quarter-round construction
//! (Bernstein, 2008), keyed by a 32-byte seed with a 64-bit block counter.
//! Output words are served in block order, so the generator is a proper
//! deterministic, seedable, uniformly distributed source. Word-for-word
//! output is not guaranteed to match upstream `rand_chacha` (which the
//! workspace never relies on); determinism per seed is.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
const WORDS_PER_BLOCK: usize = 16;

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key-dependent initial state (constants, key, counter, nonce).
    state: [u32; WORDS_PER_BLOCK],
    /// Current keystream block.
    block: [u32; WORDS_PER_BLOCK],
    /// Next unread word of `block` (WORDS_PER_BLOCK = exhausted).
    index: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12-13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; WORDS_PER_BLOCK];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12-13: block counter (0); words 14-15: nonce (0).
        let mut rng = Self {
            state,
            block: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should differ, {same} collisions");
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let v: usize = rng.gen_range(0..10);
        assert!(v < 10);
        let f: f64 = rng.gen_range(0.0..=1.0);
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn output_looks_uniform() {
        // Crude sanity check: mean of 10k unit draws is near 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 10_000;
        let sum: f64 = (0..n)
            .map(|_| (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn blocks_advance_the_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Draw more than one 16-word block and ensure no 16-word cycle.
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
