//! Offline stand-in for the `rand` crate (the subset this workspace uses).
//!
//! Provides the `rand` 0.8 API surface the PTG generators and tests rely on:
//! [`RngCore`], the [`Rng`] extension trait with `gen_range`/`gen_bool`, and
//! [`SeedableRng`] with the `seed_from_u64` convenience constructor. Range
//! sampling supports half-open and inclusive ranges over the integer types
//! and `f64`, which is everything the generators draw.
//!
//! The uniform-sampling implementations are simple (multiply-shift for
//! integers, mantissa scaling for floats); they are not bit-compatible with
//! upstream `rand`, but the workspace only depends on determinism per seed,
//! not on specific streams.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a value in `[low, high)` (`high` exclusive).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws a value in `[low, high]` (`high` inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Lemire-style multiply-shift rejection-free mapping; the
                // modulo bias is below 2^-64 for every span the workspace
                // draws, which is irrelevant for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                if low == high {
                    return low;
                }
                let span = (high as i128 - low as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + unit * (high - low);
        // Guard against `low + span` rounding up to `high`.
        if v < high {
            v
        } else {
            low
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        low + unit * (high - low)
    }
}

/// A range understood by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Extension methods on random-number sources, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value from `range` (half-open `a..b` or inclusive
    /// `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random-number generator constructible from a fixed seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it into a full seed with
    /// SplitMix64 (the same scheme upstream `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct StepRng(u64);
    impl RngCore for StepRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StepRng(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..3);
            assert!(v < 3);
            let w: i32 = rng.gen_range(0..3);
            assert!((0..3).contains(&w));
            let x: usize = rng.gen_range(5..=9);
            assert!((5..=9).contains(&x));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StepRng(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(64.0..=512.0);
            assert!((64.0..=512.0).contains(&v));
            let w: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StepRng(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_probability_is_roughly_respected() {
        let mut rng = StepRng(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = StepRng(5);
        let v: usize = rng.gen_range(4..=4);
        assert_eq!(v, 4);
    }
}
