//! Offline stand-in for the `criterion` benchmark harness (the subset this
//! workspace uses).
//!
//! Supports the classic `criterion_group!`/`criterion_main!` entry points,
//! [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::sample_size`], and [`Bencher::iter`]. Instead of
//! criterion's statistical machinery it times a fixed number of samples and
//! prints the mean/min per-iteration wall time.
//!
//! `cargo test` invokes `harness = false` bench targets with `--test`; in
//! that mode every benchmark body runs exactly once so the benches double as
//! smoke tests without slowing the test suite down.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many timed samples to collect per benchmark (upstream criterion
/// defaults to 100; the stand-in keeps runs short).
const DEFAULT_SAMPLES: usize = 10;

/// The benchmark driver handed to `criterion_group!` target functions.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: DEFAULT_SAMPLES,
            test_mode,
        }
    }
}

impl Criterion {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, self.test_mode, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `group-name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, self.test_mode, f);
        self
    }

    /// Closes the group (kept for API compatibility; reporting is per
    /// benchmark).
    pub fn finish(self) {}
}

/// Collects timing for one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let iters = if self.test_mode {
            1
        } else {
            self.iterations.max(1)
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iterations = iters;
    }
}

fn run_one<F>(id: &str, samples: usize, test_mode: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        let mut b = Bencher {
            iterations: 1,
            test_mode: true,
            ..Bencher::default()
        };
        f(&mut b);
        println!("test {id} ... ok (bench smoke)");
        return;
    }
    // Warm-up sample, then timed samples.
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for i in 0..=samples {
        let mut b = Bencher {
            iterations: 1,
            ..Bencher::default()
        };
        f(&mut b);
        if i > 0 && b.iterations > 0 {
            times.push(b.elapsed / b.iterations as u32);
        }
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len().max(1) as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    println!(
        "{id:<50} mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)",
        times.len()
    );
}

/// Declares a group of benchmark target functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: false,
        };
        let mut calls = 0;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls >= 2, "warm-up plus samples, got {calls}");
    }

    #[test]
    fn group_sample_size_and_finish() {
        let mut c = Criterion {
            sample_size: 5,
            test_mode: true,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut calls = 0;
        group.bench_function("one", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1, "test mode runs the body exactly once");
    }
}
