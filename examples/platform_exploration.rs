//! Platform exploration: build a custom multi-cluster platform, inspect the
//! Grid'5000 subsets of Table 1, and measure how the same workload behaves on
//! each site (heterogeneity and topology change the outcome).
//!
//! Run with `cargo run --release --example platform_exploration`.

use mcsched::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. The four Grid'5000 subsets used in the paper (Table 1).
    println!("Grid'5000 subsets (paper, Table 1):");
    println!(
        "{:<8} {:>9} {:>9} {:>15} {:>15} {:>14}",
        "site", "clusters", "procs", "power (GF/s)", "heterogeneity", "topology"
    );
    for site in grid5000::all_sites() {
        println!(
            "{:<8} {:>9} {:>9} {:>15.1} {:>14.1}% {:>14}",
            site.name(),
            site.num_clusters(),
            site.total_procs(),
            site.total_power() / 1e9,
            site.heterogeneity() * 100.0,
            if site.topology().is_shared() {
                "shared"
            } else {
                "per-cluster"
            }
        );
    }

    // 2. A custom platform built with the same API.
    let custom = PlatformBuilder::new("custom-lab")
        .topology(NetworkTopology::per_cluster_ten_gigabit())
        .cluster("cpu-old", 128, 2.4)
        .cluster("cpu-new", 64, 5.1)
        .cluster("fat-nodes", 16, 6.4)
        .build()
        .expect("valid custom platform");
    println!(
        "\nCustom platform `{}`: {} processors, heterogeneity {:.1}%",
        custom.name(),
        custom.total_procs(),
        custom.heterogeneity() * 100.0
    );

    // 3. Run the same 4-application workload on every platform and compare.
    let mut rng = ChaCha8Rng::seed_from_u64(1234);
    let apps: Vec<Ptg> = (0..4)
        .map(|i| PtgClass::Random.sample(&mut rng, format!("app{i}")))
        .collect();
    let scheduler =
        ConcurrentScheduler::with_strategy(ConstraintStrategy::Weighted(Characteristic::Work, 0.7));

    let mut platforms = grid5000::all_sites();
    platforms.push(custom);

    println!("\nSame workload (4 random PTGs), WPS-work strategy, on every platform:");
    println!(
        "{:<12} {:>14} {:>12} {:>14}",
        "platform", "makespan (s)", "unfairness", "avg slowdown"
    );
    for platform in &platforms {
        let evaluation = scheduler.evaluate(platform, &apps).expect("valid schedule");
        println!(
            "{:<12} {:>14.1} {:>12.3} {:>14.2}",
            platform.name(),
            evaluation.run.global_makespan,
            evaluation.fairness.unfairness,
            evaluation.fairness.average_slowdown
        );
    }
    println!(
        "\nBigger or faster platforms absorb the same workload with smaller makespans and\n\
         less interference between the concurrent applications."
    );
}
