//! Quickstart: schedule a handful of random parallel task graphs on a
//! Grid'5000 site and print fairness figures for two constraint strategies.
//!
//! Run with `cargo run --release --example quickstart`.

use mcsched::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. Pick a platform: the Lille subset of Table 1 (3 clusters, 99 procs).
    let platform = grid5000::lille();
    println!(
        "Platform {}: {} clusters, {} processors, {:.1} GFlop/s total, heterogeneity {:.1}%",
        platform.name(),
        platform.num_clusters(),
        platform.total_procs(),
        platform.total_power() / 1e9,
        platform.heterogeneity() * 100.0
    );

    // 2. Draw four random mixed-parallel applications (PTGs).
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let apps: Vec<Ptg> = (0..4)
        .map(|i| PtgClass::Random.sample(&mut rng, format!("workflow-{i}")))
        .collect();
    for app in &apps {
        println!(
            "  {}: {} tasks, {} edges, {:.1} GFlop of work",
            app.name(),
            app.num_tasks(),
            app.num_edges(),
            app.total_work() / 1e9
        );
    }

    // 3. Schedule them concurrently with two strategies and compare. The
    //    builder resolves constraint policies by registry name; `selfish`
    //    is the dedicated-platform baseline, `wps-width@0.5` the paper's
    //    recommended weighted proportional share.
    let workload = Workload::batch(apps).with_label("quickstart");
    for name in ["selfish", "wps-width@0.5"] {
        let scheduler = ConcurrentScheduler::builder()
            .constraint(name)
            .allocation("scrap-max")
            .build()
            .expect("built-in policy names resolve");
        let evaluation = scheduler
            .evaluate(&platform, &workload)
            .expect("the scheduler always produces a simulable schedule");
        println!("\nStrategy {}:", scheduler.constraint_policy().name());
        for (i, app) in evaluation.run.apps.iter().enumerate() {
            println!(
                "  {:<12} beta {:.2}  makespan {:>8.1}s  dedicated {:>8.1}s  slowdown {:.2}",
                app.name,
                app.beta,
                app.makespan,
                evaluation.dedicated_makespans[i],
                evaluation.fairness.slowdowns[i]
            );
        }
        println!(
            "  global makespan {:.1}s, unfairness {:.3}",
            evaluation.run.global_makespan, evaluation.fairness.unfairness
        );
    }
}
