//! A workflow-server scenario: a mix of small and large scientific workflows
//! (random DAGs, an FFT and a Strassen multiplication) are submitted to a
//! shared multi-cluster site. The example shows how the choice of the
//! resource-constraint strategy changes what each user experiences.
//!
//! Run with `cargo run --release --example concurrent_workflows`.

use mcsched::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let platform = grid5000::rennes();
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // A heterogeneous job mix: two small workflows, one large workflow, an
    // FFT solver and a Strassen matrix product.
    let small_cfg = RandomPtgConfig {
        num_tasks: 10,
        width: 0.5,
        ..RandomPtgConfig::default_config()
    };
    let large_cfg = RandomPtgConfig {
        num_tasks: 50,
        width: 0.8,
        ..RandomPtgConfig::default_config()
    };
    let apps: Vec<Ptg> = vec![
        random_ptg(&small_cfg, &mut rng, "ingest-A"),
        random_ptg(&small_cfg, &mut rng, "ingest-B"),
        random_ptg(&large_cfg, &mut rng, "analysis"),
        fft_ptg(16, &mut rng, "fft-solver"),
        strassen_ptg(&mut rng, "strassen"),
    ];

    println!(
        "{} applications submitted to {} ({} processors)\n",
        apps.len(),
        platform.name(),
        platform.total_procs()
    );
    println!(
        "{:<12} {:>6} {:>7} {:>12} {:>10}",
        "application", "tasks", "width", "work (GFlop)", "cp (s)"
    );
    let reference = ReferencePlatform::new(&platform);
    for app in &apps {
        let s = mcsched::ptg::analysis::structure(app);
        let cp = mcsched::ptg::analysis::sequential_critical_path(app, reference.speed());
        println!(
            "{:<12} {:>6} {:>7} {:>12.1} {:>10.1}",
            app.name(),
            app.num_tasks(),
            s.max_width(),
            app.total_work() / 1e9,
            cp
        );
    }

    println!();
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "strategy", "unfairness", "makespan(s)", "min slow.", "max slow."
    );
    for strategy in ConstraintStrategy::paper_set() {
        let scheduler = ConcurrentScheduler::with_strategy(strategy);
        let evaluation = scheduler
            .evaluate(&platform, &apps)
            .expect("valid schedule");
        let min = evaluation
            .fairness
            .slowdowns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = evaluation
            .fairness
            .slowdowns
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        println!(
            "{:<12} {:>12.3} {:>12.1} {:>12.2} {:>12.2}",
            strategy.name(),
            evaluation.fairness.unfairness,
            evaluation.run.global_makespan,
            min,
            max
        );
    }
    println!(
        "\nA low unfairness with a competitive makespan (the WPS strategies) means no user\n\
         pays disproportionately for sharing the platform."
    );
}
