//! Tour of the `mcsched-workload` subsystem: resolve spec strings from the
//! catalog, generate timed workloads, export/replay a trace, and print the
//! width-calibration table behind the DAGGEN generator.
//!
//! Run with `cargo run --release --example workloads_and_traces`.

use mcsched::prelude::*;
use mcsched::workload::compare_paper_widths;

fn main() {
    let catalog = WorkloadCatalog::builtin();

    // 1. Resolve a calibrated DAGGEN source with Poisson arrivals and
    //    generate a deterministic workload.
    let source = catalog
        .resolve("daggen@n=50,width=0.5/poisson@lambda=0.001")
        .expect("spec resolves");
    let request = WorkloadRequest::new(42, 4, "demo");
    let workload = source.generate(&request).expect("generation succeeds");
    println!(
        "spec `{}` produced {} applications:",
        source.spec(),
        workload.len()
    );
    for (ptg, release) in workload.ptgs().iter().zip(workload.release_times()) {
        println!(
            "  {:<8} {:>3} tasks, {:>6.1} Gflop, released at t = {release:.1} s",
            ptg.name(),
            ptg.num_tasks(),
            ptg.total_work() / 1e9
        );
    }

    // 2. Schedule it, export it as a trace, re-import, and verify the
    //    replayed schedule is identical.
    let platform = grid5000::lille();
    let scheduler = ConcurrentScheduler::builder()
        .constraint("wps-work@0.7")
        .build()
        .expect("policy names resolve");
    let live = scheduler
        .evaluate(&platform, &workload)
        .expect("scheduling succeeds");

    let trace =
        Trace::record(source.as_ref(), std::slice::from_ref(&request), 42).expect("record ok");
    let replayed_workload =
        TraceSource::new(Trace::from_json(&trace.to_json()).expect("trace round-trips"))
            .generate(&request)
            .expect("replay succeeds");
    let replayed = scheduler
        .evaluate(&platform, &replayed_workload)
        .expect("scheduling succeeds");
    println!(
        "\nlive makespan {:.1} s, replayed-from-JSON makespan {:.1} s (identical: {})",
        live.run.global_makespan,
        replayed.run.global_makespan,
        live.run.global_makespan == replayed.run.global_makespan
    );

    // 3. The width-calibration table: why the DAGGEN generator exists.
    println!(
        "\nwidth calibration (realized max width, 64 samples/cell; the paper's \
         generator targets fat*sqrt(n)):"
    );
    println!(
        "{:>4} {:>6} {:>12} {:>16} {:>16}",
        "n", "width", "paper target", "daggen realized", "legacy realized"
    );
    for row in compare_paper_widths(64, 0xCAFE) {
        println!(
            "{:>4} {:>6.1} {:>12.1} {:>13.1} +- {:<4.1} {:>12.1} +- {:<4.1}",
            row.num_tasks,
            row.width,
            row.paper_mean_width,
            row.daggen.mean_max_width,
            row.daggen.std_max_width,
            row.legacy.mean_max_width,
            row.legacy.std_max_width,
        );
    }
}
