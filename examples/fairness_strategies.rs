//! Anatomy of the constraint strategies: for a fixed set of applications the
//! example prints the β attributed to each application by every strategy and
//! the resulting allocation sizes, makespans and slowdowns — a compact view
//! of Section 6 of the paper.
//!
//! Run with `cargo run --release --example fairness_strategies`.

use mcsched::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let platform = grid5000::sophia();
    let mut rng = ChaCha8Rng::seed_from_u64(99);

    // Deliberately unbalanced mix: a tiny, a medium and a huge application.
    let mk = |tasks: usize, width: f64, rng: &mut ChaCha8Rng, name: &str| {
        let cfg = RandomPtgConfig {
            num_tasks: tasks,
            width,
            ..RandomPtgConfig::default_config()
        };
        random_ptg(&cfg, rng, name)
    };
    let apps = vec![
        mk(10, 0.2, &mut rng, "tiny-chain"),
        mk(20, 0.5, &mut rng, "medium"),
        mk(50, 0.8, &mut rng, "huge-wide"),
    ];

    let reference = ReferencePlatform::new(&platform);
    println!(
        "Platform {}: {} reference processors of {:.2} GFlop/s\n",
        platform.name(),
        reference.procs(),
        reference.speed() / 1e9
    );

    println!("Per-strategy resource constraints (beta):");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "strategy", "tiny-chain", "medium", "huge-wide"
    );
    for strategy in ConstraintStrategy::paper_set() {
        let betas = strategy.betas(&apps, &reference);
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.3}",
            strategy.name(),
            betas[0],
            betas[1],
            betas[2]
        );
    }

    println!("\nEnd-to-end outcome per strategy:");
    println!(
        "{:<12} {:>22} {:>14} {:>12}",
        "strategy", "allocated ref procs", "makespan (s)", "unfairness"
    );
    for strategy in ConstraintStrategy::paper_set() {
        let scheduler = ConcurrentScheduler::with_strategy(strategy);
        let allocations = scheduler.allocate(&platform, &apps);
        let evaluation = scheduler
            .evaluate(&platform, &apps)
            .expect("valid schedule");
        let alloc_str = allocations
            .iter()
            .map(|a| a.total().to_string())
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "{:<12} {:>22} {:>14.1} {:>12.3}",
            strategy.name(),
            alloc_str,
            evaluation.run.global_makespan,
            evaluation.fairness.unfairness
        );
    }
    println!(
        "\nPS-work starves the tiny application (small beta, few processors) which hurts\n\
         fairness, while ES wastes processors on it; the WPS strategies sit in between."
    );
}
